#include "hybster/exec_schedule.hpp"

#include <string>
#include <unordered_map>

#include "sim/lanes.hpp"

namespace troxy::hybster {

ExecPlan plan_execution(const Batch& batch, const Service& service,
                        std::size_t lanes) {
    const std::size_t n = batch.requests.size();
    ExecPlan plan;
    plan.class_of.assign(n, ExecPlan::kNoClass);
    if (lanes == 0) lanes = 1;

    // Pass 1: partition by the primary state partition. Members sharing
    // a state_key form one conflict class (a sequential chain in batch
    // order); classes are numbered by first appearance. extra_keys are
    // *invalidation* targets (a mutation's write-set closure over cache
    // partitions such as scan prefixes) and deliberately do not create
    // execution conflicts — two writes under a common scan prefix still
    // commute at the exact-key level. Iterating in batch order with a
    // deterministic classify() makes the partition identical on all
    // correct replicas.
    std::unordered_map<std::string, std::size_t> class_of_key;
    std::vector<sim::Duration> class_cost;
    std::vector<std::size_t> class_members;
    for (std::size_t i = 0; i < n; ++i) {
        const Request& request = batch.requests[i];
        if (request.flags & Request::kFlagNoop) continue;
        const sim::Duration cost = service.execution_cost(request.payload);
        RequestInfo info = service.classify(request.payload);
        auto [it, inserted] = class_of_key.try_emplace(
            std::move(info.state_key), class_cost.size());
        if (inserted) {
            class_cost.push_back(sim::Duration{0});
            class_members.push_back(0);
        }
        plan.class_of[i] = it->second;
        class_cost[it->second] += cost;
        ++class_members[it->second];
        plan.serial += cost;
    }
    plan.conflict_classes = class_cost.size();
    for (const std::size_t members : class_members) {
        if (members > 1) plan.conflict_stalls += members - 1;
    }

    // Pass 2: greedy list scheduling of whole classes, in first-
    // appearance order, onto the earliest-free lane.
    sim::LaneSchedule schedule(lanes);
    for (const sim::Duration chain : class_cost) schedule.add(chain);
    plan.makespan = schedule.makespan();
    plan.lanes_used = schedule.lanes_used();
    return plan;
}

}  // namespace troxy::hybster
