// Baseline Hybster server host ("BL" in the evaluation).
//
// The unmodified Hybster deployment: clients run the traditional
// client-side BFT library (hybster::Client), connect to every replica
// over secure channels, and vote over f+1 replies themselves. This host
// is the server half of those connections — it terminates the per-client
// channels, feeds decrypted requests into the replica, and sends back
// replies authenticated with the pairwise client↔replica secret.
// Everything here runs at the Java cost profile, like the original
// Hybster prototype.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "crypto/x25519.hpp"
#include "hybster/replica.hpp"
#include "net/secure_channel.hpp"

namespace troxy::baselines {

class BaselineReplicaHost {
  public:
    /// `client_key_provider` returns the pairwise secret between this
    /// replica and a client node (distributed by trusted setup).
    using ClientKeyProvider = std::function<Bytes(sim::NodeId client)>;

    BaselineReplicaHost(net::Fabric& fabric, sim::Node& node,
                        hybster::Config config, std::uint32_t replica_id,
                        hybster::ServicePtr service,
                        std::shared_ptr<enclave::TrinX> trinx,
                        crypto::X25519Keypair channel_identity,
                        ClientKeyProvider client_key_provider,
                        const sim::CostProfile& profile);

    void attach();

    [[nodiscard]] hybster::Replica& replica() noexcept { return *replica_; }
    [[nodiscard]] sim::Node& node() noexcept { return node_; }

    void set_faults(const hybster::FaultProfile& faults) {
        faults_ = faults;
        replica_->set_faults(faults);
    }

  private:
    void on_message(sim::NodeId from, Bytes message);
    void handle_client_frame(sim::NodeId from, ByteView payload);

    net::Fabric& fabric_;
    sim::Node& node_;
    hybster::Config config_;
    std::uint32_t replica_id_;
    crypto::X25519Keypair identity_;
    ClientKeyProvider client_keys_;
    const sim::CostProfile& profile_;
    hybster::FaultProfile faults_;

    std::unique_ptr<hybster::Replica> replica_;
    std::map<sim::NodeId, net::SecureChannelServer> channels_;
    std::uint64_t handshake_counter_ = 0;
};

}  // namespace troxy::baselines
