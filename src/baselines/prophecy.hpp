// Prophecy middlebox (Sen et al., NSDI'10) — the transparent-proxy
// comparator of §VI-D / Table I.
//
// Like Troxy, Prophecy hides BFT from the client behind a proxy. Unlike
// Troxy it (i) is a *middlebox* — a whole trusted machine with its own
// OS and network stack between clients and replicas, and (ii) trades
// consistency for speed: its sketch cache stores the hash of the result
// of the latest *read*; the fast path sends the read to a single random
// replica and accepts the response if its hash matches the sketch. After
// a write the sketch is stale, so the fast path usually falls back to a
// full ordered read — but a lagging (correct-but-stale) replica matching
// a stale sketch returns a stale result: weak consistency (the reply
// "reflects the state of the latest read").
//
// Runs on PBFT with 3f+1 replicas, per Table I.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "baselines/pbft.hpp"
#include "crypto/x25519.hpp"
#include "net/secure_channel.hpp"
#include "troxy/enclave.hpp"  // reuse Classifier

namespace troxy::baselines {

class ProphecyMiddlebox {
  public:
    struct Options {
        std::size_t sketch_capacity = 1u << 16;
        sim::Duration fast_read_timeout = sim::milliseconds(100);
    };

    struct Stats {
        std::uint64_t fast_hits = 0;
        std::uint64_t sketch_misses = 0;
        std::uint64_t fast_conflicts = 0;
        std::uint64_t ordered = 0;
    };

    ProphecyMiddlebox(net::Fabric& fabric, sim::Node& node,
                      pbft::Config config,
                      std::shared_ptr<net::MacTable> macs,
                      crypto::X25519Keypair channel_identity,
                      troxy_core::Classifier classifier,
                      const sim::CostProfile& profile, Options options,
                      std::uint64_t seed);

    void attach();

    [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  private:
    struct Connection {
        net::SecureChannelServer channel;
        std::uint64_t next_assign = 0;
        std::uint64_t next_release = 0;
        std::map<std::uint64_t, Bytes> ready;

        explicit Connection(const crypto::X25519Keypair& identity)
            : channel(identity) {}
    };

    void on_message(sim::NodeId from, Bytes message);
    void handle_client_frame(sim::NodeId from, ByteView payload);
    void handle_app_request(sim::NodeId client, Bytes app_request);
    void ordered_read_through(sim::NodeId client, std::uint64_t slot,
                              Bytes app_request, bool update_sketch);
    void release_reply(sim::NodeId client, std::uint64_t slot,
                       Bytes app_reply);

    net::Fabric& fabric_;
    sim::Node& node_;
    pbft::Config config_;
    crypto::X25519Keypair identity_;
    troxy_core::Classifier classifier_;
    const sim::CostProfile& profile_;
    Options options_;

    std::unique_ptr<pbft::PbftClient> bft_client_;
    std::map<sim::NodeId, Connection> connections_;
    // sketch: hash(app request) → hash(result of latest read)
    std::map<Bytes, crypto::Sha256Digest> sketch_;
    Rng rng_;
    std::uint64_t handshake_counter_ = 0;
    Stats stats_;
};

}  // namespace troxy::baselines
