#include "baselines/pbft.hpp"

#include "common/assert.hpp"
#include "common/serialize.hpp"
#include "net/envelope.hpp"

namespace troxy::baselines::pbft {

void Config::validate() const {
    TROXY_ASSERT(n() == 3 * f + 1, "PBFT requires exactly 3f+1 replicas");
    TROXY_ASSERT(checkpoint_interval > 0, "checkpoint interval > 0");
}

// ------------------------------------------------------------- wire layer

Bytes seal_frame(enclave::CostedCrypto& crypto, const net::MacTable& macs,
                 sim::NodeId from, sim::NodeId to, PbftType type,
                 ByteView body) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(type));
    w.raw(body);
    const crypto::HmacTag tag = macs.sign(crypto, from, to, w.data());
    w.raw(tag);
    return std::move(w).take();
}

std::optional<std::pair<PbftType, Bytes>> open_frame(
    enclave::CostedCrypto& crypto, const net::MacTable& macs,
    sim::NodeId from, sim::NodeId to, ByteView frame) {
    if (frame.size() < 1 + sizeof(crypto::HmacTag)) return std::nullopt;
    const ByteView content = frame.first(frame.size() - sizeof(crypto::HmacTag));
    const ByteView tag_bytes = frame.last(sizeof(crypto::HmacTag));
    crypto::HmacTag tag;
    std::copy(tag_bytes.begin(), tag_bytes.end(), tag.begin());
    if (!macs.verify(crypto, from, to, content, tag)) return std::nullopt;

    const auto type = static_cast<PbftType>(content[0]);
    switch (type) {
        case PbftType::Request:
        case PbftType::PrePrepare:
        case PbftType::Prepare:
        case PbftType::Commit:
        case PbftType::Reply:
        case PbftType::ReadOne:
        case PbftType::ViewChange:
        case PbftType::NewView:
            break;
        default:
            return std::nullopt;
    }
    return std::make_pair(type, Bytes(content.begin() + 1, content.end()));
}

namespace {

Bytes encode_request(const Request& request) {
    Writer w;
    request.encode(w);
    return std::move(w).take();
}

Bytes encode_reply(const Reply& reply) {
    Writer w;
    reply.encode(w);
    return std::move(w).take();
}

struct PhaseBody {  // shared by Prepare and Commit
    ViewNumber view = 0;
    SequenceNumber seq = 0;
    crypto::Sha256Digest digest{};
    std::uint32_t replica = 0;
};

Bytes encode_phase(const PhaseBody& body) {
    Writer w;
    w.u64(body.view);
    w.u64(body.seq);
    w.raw(body.digest);
    w.u32(body.replica);
    return std::move(w).take();
}

PhaseBody decode_phase(ByteView data) {
    Reader r(data);
    PhaseBody body;
    body.view = r.u64();
    body.seq = r.u64();
    const Bytes digest = r.raw(crypto::kSha256DigestSize);
    std::copy(digest.begin(), digest.end(), body.digest.begin());
    body.replica = r.u32();
    r.expect_done();
    return body;
}

}  // namespace

// ---------------------------------------------------------------- replica

PbftReplica::PbftReplica(net::Fabric& fabric, sim::Node& node, Config config,
                         std::uint32_t replica_id,
                         hybster::ServicePtr service,
                         std::shared_ptr<net::MacTable> macs,
                         const sim::CostProfile& profile)
    : fabric_(fabric),
      node_(node),
      config_(std::move(config)),
      id_(replica_id),
      service_(std::move(service)),
      macs_(std::move(macs)),
      profile_(profile) {
    config_.validate();
}

void PbftReplica::broadcast(enclave::CostedCrypto& crypto,
                            net::Outbox& outbox, PbftType type,
                            ByteView body) {
    for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(config_.n());
         ++r) {
        if (r == id_) continue;
        const sim::NodeId to = config_.node_of(r);
        outbox.send(to, net::wrap(net::Channel::Pbft,
                                  seal_frame(crypto, *macs_, node_.id(), to,
                                             type, body)));
    }
}

void PbftReplica::on_message(sim::NodeId from, ByteView payload) {
    if (faults_.crashed) return;

    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    net::Outbox outbox(fabric_, node_);
    crypto.charge_dispatch();

    auto frame = open_frame(crypto, *macs_, from, node_.id(), payload);
    if (!frame) {
        outbox.flush(meter);
        return;
    }

    try {
        switch (frame->first) {
            case PbftType::Request: {
                Reader r(frame->second);
                Request request = Request::decode(r);
                r.expect_done();
                handle_request(crypto, outbox, from, std::move(request));
                break;
            }
            case PbftType::ReadOne: {
                Reader r(frame->second);
                Request request = Request::decode(r);
                r.expect_done();
                handle_read_one(crypto, outbox, from, std::move(request));
                break;
            }
            case PbftType::PrePrepare:
                handle_pre_prepare(crypto, outbox, from, frame->second);
                break;
            case PbftType::Prepare:
                handle_prepare(crypto, outbox, from, frame->second);
                break;
            case PbftType::Commit:
                handle_commit(crypto, outbox, from, frame->second);
                break;
            case PbftType::ViewChange:
                handle_view_change(crypto, outbox, from, frame->second);
                break;
            case PbftType::NewView:
                handle_new_view(crypto, outbox, from, frame->second);
                break;
            case PbftType::Reply:
                break;  // replicas never receive replies
        }
    } catch (const DecodeError&) {
        // malformed body from an authenticated-but-faulty peer: discard
    }

    outbox.flush(meter);
}

void PbftReplica::handle_request(enclave::CostedCrypto& crypto,
                                 net::Outbox& outbox, sim::NodeId from,
                                 Request&& request) {
    (void)from;
    // Retransmission of an executed request: resend the reply.
    const auto done = executed_replies_.find(request.id);
    if (done != executed_replies_.end()) {
        if (!faults_.drop_replies) {
            send_reply(crypto, outbox, request, Reply(done->second));
        }
        return;
    }

    if (!is_leader()) {
        forwarded_.emplace(request.id, request);
        const sim::NodeId leader = config_.node_of(config_.leader_of(view_));
        outbox.send(leader,
                    net::wrap(net::Channel::Pbft,
                              seal_frame(crypto, *macs_, node_.id(), leader,
                                         PbftType::Request,
                                         encode_request(request))));
        arm_progress_timer();
        return;
    }
    if (in_view_change_) return;

    // Suppress duplicate ordering of an in-flight request.
    for (const auto& [seq, entry] : log_) {
        if (entry.request && entry.request->id == request.id &&
            !entry.executed) {
            return;
        }
    }

    const SequenceNumber seq = next_seq_++;
    auto& entry = log_[seq];
    entry.view = view_;
    entry.digest = crypto.hash(request.signed_view());
    entry.request = request;

    Writer body;
    body.u64(view_);
    body.u64(seq);
    request.encode(body);

    if (!faults_.mute_agreement) {
        broadcast(crypto, outbox, PbftType::PrePrepare, body.data());
    }
    arm_progress_timer();
}

void PbftReplica::handle_pre_prepare(enclave::CostedCrypto& crypto,
                                     net::Outbox& outbox, sim::NodeId from,
                                     ByteView body) {
    if (config_.replica_of(from) !=
        static_cast<int>(config_.leader_of(view_))) {
        return;
    }
    if (in_view_change_) return;

    Reader r(body);
    const ViewNumber view = r.u64();
    const SequenceNumber seq = r.u64();
    Request request = Request::decode(r);
    r.expect_done();

    if (view != view_) return;
    if (seq <= last_executed_ && log_.find(seq) == log_.end()) return;

    auto& entry = log_[seq];
    if (entry.request) return;  // duplicate pre-prepare
    entry.view = view;
    entry.digest = crypto.hash(request.signed_view());
    entry.request = std::move(request);

    PhaseBody phase{view, seq, entry.digest, id_};
    entry.prepares.insert(id_);
    if (!faults_.mute_agreement) {
        broadcast(crypto, outbox, PbftType::Prepare, encode_phase(phase));
    }
    maybe_send_commit(crypto, outbox, seq);
    arm_progress_timer();
}

void PbftReplica::handle_prepare(enclave::CostedCrypto& crypto,
                                 net::Outbox& outbox, sim::NodeId from,
                                 ByteView body) {
    const PhaseBody phase = decode_phase(body);
    if (phase.view != view_ || in_view_change_) return;
    if (config_.replica_of(from) != static_cast<int>(phase.replica)) return;
    if (phase.replica == config_.leader_of(view_)) return;

    auto& entry = log_[phase.seq];
    if (entry.request &&
        !constant_time_equal(entry.digest, phase.digest)) {
        return;  // conflicting digest
    }
    entry.prepares.insert(phase.replica);
    maybe_send_commit(crypto, outbox, phase.seq);
}

void PbftReplica::maybe_send_commit(enclave::CostedCrypto& crypto,
                                    net::Outbox& outbox,
                                    SequenceNumber seq) {
    auto& entry = log_[seq];
    if (entry.committed_sent || !entry.request) return;
    if (static_cast<int>(entry.prepares.size()) < config_.prepared_quorum()) {
        return;
    }
    entry.committed_sent = true;
    entry.commits.insert(id_);
    PhaseBody phase{view_, seq, entry.digest, id_};
    if (!faults_.mute_agreement) {
        broadcast(crypto, outbox, PbftType::Commit, encode_phase(phase));
    }
    try_execute(crypto, outbox);
}

void PbftReplica::handle_commit(enclave::CostedCrypto& crypto,
                                net::Outbox& outbox, sim::NodeId from,
                                ByteView body) {
    const PhaseBody phase = decode_phase(body);
    if (phase.view != view_ || in_view_change_) return;
    if (config_.replica_of(from) != static_cast<int>(phase.replica)) return;

    auto& entry = log_[phase.seq];
    if (entry.request && !constant_time_equal(entry.digest, phase.digest)) {
        return;
    }
    entry.commits.insert(phase.replica);
    try_execute(crypto, outbox);
}

void PbftReplica::try_execute(enclave::CostedCrypto& crypto,
                              net::Outbox& outbox) {
    for (;;) {
        const SequenceNumber next = last_executed_ + 1;
        const auto it = log_.find(next);
        if (it == log_.end() || it->second.executed || !it->second.request ||
            static_cast<int>(it->second.commits.size()) <
                config_.commit_quorum()) {
            break;
        }
        LogEntry& entry = it->second;
        entry.executed = true;
        last_executed_ = next;

        const Request& request = *entry.request;
        forwarded_.erase(request.id);
        crypto.charge(service_->execution_cost(request.payload));
        Bytes result = service_->execute(request.payload);

        Reply reply;
        reply.kind = Reply::Kind::Ordered;
        reply.view = view_;
        reply.seq = next;
        reply.request_id = request.id;
        reply.request_digest = entry.digest;
        reply.result = std::move(result);
        reply.replica = id_;

        executed_replies_[request.id] = reply;
        if (executed_replies_.size() > 65536) {
            executed_replies_.erase(executed_replies_.begin());
        }

        if (!faults_.drop_replies) {
            if (faults_.corrupt_replies && !reply.result.empty()) {
                reply.result[0] ^= 0xff;
            }
            send_reply(crypto, outbox, request, std::move(reply));
        }

        // Log truncation stands in for PBFT's checkpoint subprotocol: two
        // intervals of slack keep every plausibly-needed entry around.
        if (last_executed_ % config_.checkpoint_interval == 0 &&
            last_executed_ > 2 * config_.checkpoint_interval) {
            const SequenceNumber floor =
                last_executed_ - 2 * config_.checkpoint_interval;
            log_.erase(log_.begin(), log_.upper_bound(floor));
        }
        arm_progress_timer();
    }
}

void PbftReplica::send_reply(enclave::CostedCrypto& crypto,
                             net::Outbox& outbox, const Request& request,
                             Reply&& reply) {
    const sim::NodeId client = request.id.client;
    if (!macs_->has_key(node_.id(), client)) return;
    outbox.send(client, net::wrap(net::Channel::Pbft,
                                  seal_frame(crypto, *macs_, node_.id(),
                                             client, PbftType::Reply,
                                             encode_reply(reply))));
}

void PbftReplica::handle_read_one(enclave::CostedCrypto& crypto,
                                  net::Outbox& outbox, sim::NodeId from,
                                  Request&& request) {
    (void)from;
    crypto.charge(service_->execution_cost(request.payload));
    Bytes result = service_->execute(request.payload);

    Reply reply;
    reply.kind = Reply::Kind::Optimistic;
    reply.view = view_;
    reply.seq = last_executed_;
    reply.request_id = request.id;
    reply.request_digest = crypto.hash(request.signed_view());
    reply.result = std::move(result);
    reply.replica = id_;

    if (!faults_.drop_replies) {
        if (faults_.corrupt_replies && !reply.result.empty()) {
            reply.result[0] ^= 0xff;
        }
        send_reply(crypto, outbox, request, std::move(reply));
    }
}

// ------------------------------------------------------------ view change

void PbftReplica::arm_progress_timer() {
    if (timer_armed_ || faults_.crashed) return;
    timer_armed_ = true;
    const SequenceNumber executed_at_arm = last_executed_;
    const ViewNumber view_at_arm = view_;
    const std::uint64_t generation = ++timer_generation_;

    fabric_.simulator().after(
        config_.view_change_timeout,
        [this, executed_at_arm, view_at_arm, generation]() {
            if (generation != timer_generation_) return;
            timer_armed_ = false;
            if (faults_.crashed || view_ != view_at_arm) return;
            const bool pending =
                !forwarded_.empty() ||
                std::any_of(log_.begin(), log_.end(), [](const auto& kv) {
                    return !kv.second.executed;
                });
            if (!pending) return;
            if (last_executed_ == executed_at_arm) {
                start_view_change(view_ + 1);
            } else {
                arm_progress_timer();
            }
        });
}

void PbftReplica::start_view_change(ViewNumber new_view) {
    if (new_view <= view_ || new_view <= highest_vc_sent_) return;
    highest_vc_sent_ = new_view;
    in_view_change_ = true;
    ++view_change_count_;

    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    net::Outbox outbox(fabric_, node_);

    Writer body;
    body.u64(new_view);
    body.u32(id_);
    std::uint32_t count = 0;
    for (const auto& [seq, entry] : log_) {
        if (entry.request) ++count;
    }
    body.u32(count);
    for (const auto& [seq, entry] : log_) {
        if (!entry.request) continue;
        body.u64(seq);
        entry.request->encode(body);
    }

    view_changes_rx_[new_view][id_] = body.data();
    broadcast(crypto, outbox, PbftType::ViewChange, body.data());
    outbox.flush(meter);
}

void PbftReplica::handle_view_change(enclave::CostedCrypto& crypto,
                                     net::Outbox& outbox, sim::NodeId from,
                                     ByteView body) {
    Reader r(body);
    const ViewNumber new_view = r.u64();
    const std::uint32_t sender = r.u32();
    if (new_view <= view_) return;
    if (config_.replica_of(from) != static_cast<int>(sender)) return;

    view_changes_rx_[new_view][sender] = Bytes(body.begin(), body.end());
    if (new_view > highest_vc_sent_) start_view_change(new_view);

    // New leader: assemble once 2f+1 view changes arrived.
    if (config_.leader_of(new_view) != id_) return;
    const auto& received = view_changes_rx_[new_view];
    if (static_cast<int>(received.size()) < config_.commit_quorum()) return;
    if (view_ >= new_view) return;

    std::map<SequenceNumber, Request> union_requests;
    for (const auto& [replica, vc_body] : received) {
        Reader vr(vc_body);
        vr.u64();  // new_view
        vr.u32();  // sender
        const std::uint32_t count = vr.u32();
        for (std::uint32_t i = 0; i < count; ++i) {
            const SequenceNumber seq = vr.u64();
            Request request = Request::decode(vr);
            if (seq > last_executed_) {
                union_requests.emplace(seq, std::move(request));
            }
        }
    }

    view_ = new_view;
    in_view_change_ = false;
    log_.clear();
    next_seq_ = last_executed_ + 1;

    Writer nv;
    nv.u64(new_view);
    nv.u64(last_executed_ + 1);
    nv.u32(static_cast<std::uint32_t>(union_requests.size()));
    // Re-propose with fresh consecutive sequence numbers.
    std::vector<Request> to_order;
    for (auto& [seq, request] : union_requests) {
        to_order.push_back(std::move(request));
    }
    for (const Request& request : to_order) {
        nv.u64(next_seq_);
        request.encode(nv);
        auto& entry = log_[next_seq_];
        entry.view = view_;
        entry.digest = crypto.hash(request.signed_view());
        entry.request = request;
        entry.prepares.insert(id_);
        ++next_seq_;
    }
    broadcast(crypto, outbox, PbftType::NewView, nv.data());
    reissue_forwarded(crypto, outbox);
    arm_progress_timer();
}

void PbftReplica::reissue_forwarded(enclave::CostedCrypto& crypto,
                                    net::Outbox& outbox) {
    const auto pending = forwarded_;
    for (const auto& [id, request] : pending) {
        bool in_log = false;
        for (const auto& [seq, entry] : log_) {
            if (entry.request && entry.request->id == id) {
                in_log = true;
                break;
            }
        }
        if (in_log || executed_replies_.contains(id)) continue;
        handle_request(crypto, outbox, node_.id(), Request(request));
    }
}

void PbftReplica::handle_new_view(enclave::CostedCrypto& crypto,
                                  net::Outbox& outbox, sim::NodeId from,
                                  ByteView body) {
    Reader r(body);
    const ViewNumber new_view = r.u64();
    const SequenceNumber start_seq = r.u64();
    (void)start_seq;
    if (new_view <= view_) return;
    if (config_.replica_of(from) !=
        static_cast<int>(config_.leader_of(new_view))) {
        return;
    }

    view_ = new_view;
    in_view_change_ = false;
    log_.clear();
    next_seq_ = last_executed_ + 1;

    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
        const SequenceNumber seq = r.u64();
        Request request = Request::decode(r);

        Writer pp;
        pp.u64(view_);
        pp.u64(seq);
        request.encode(pp);
        handle_pre_prepare(crypto, outbox,
                           config_.node_of(config_.leader_of(view_)),
                           pp.data());
    }
    reissue_forwarded(crypto, outbox);
    arm_progress_timer();
}

// ----------------------------------------------------------------- client

PbftClient::PbftClient(net::Fabric& fabric, sim::Node& node, Config config,
                       std::shared_ptr<net::MacTable> macs,
                       const sim::CostProfile& profile,
                       sim::Duration retransmit_timeout)
    : fabric_(fabric),
      node_(node),
      config_(std::move(config)),
      macs_(std::move(macs)),
      profile_(profile),
      retransmit_timeout_(retransmit_timeout) {
    config_.validate();
}

void PbftClient::invoke(Bytes payload, bool is_read, Callback callback) {
    const std::uint64_t number = next_number_++;
    auto& pending = pending_[number];
    pending.payload = std::move(payload);
    pending.callback = std::move(callback);
    if (is_read) pending.flags |= Request::kFlagRead;

    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    net::Outbox outbox(fabric_, node_);
    send_request(crypto, outbox, number, false);
    outbox.flush(meter);
    arm_retransmit(number);
}

void PbftClient::read_one(Bytes payload, std::uint32_t replica,
                          Callback callback) {
    const std::uint64_t number = next_number_++;
    read_ones_[number] = std::move(callback);

    Request request;
    request.id.client = node_.id();
    request.id.number = number;
    request.flags = Request::kFlagRead | Request::kFlagOptimistic;
    request.payload = std::move(payload);

    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    net::Outbox outbox(fabric_, node_);
    const sim::NodeId to = config_.node_of(replica);
    outbox.send(to, net::wrap(net::Channel::Pbft,
                              seal_frame(crypto, *macs_, node_.id(), to,
                                         PbftType::ReadOne,
                                         encode_request(request))));
    outbox.flush(meter);
}

void PbftClient::send_request(enclave::CostedCrypto& crypto,
                              net::Outbox& outbox, std::uint64_t number,
                              bool broadcast) {
    const auto it = pending_.find(number);
    if (it == pending_.end()) return;
    Pending& pending = it->second;

    Request request;
    request.id.client = node_.id();
    request.id.number = number;
    request.flags = pending.flags;
    request.payload = pending.payload;
    const Bytes body = encode_request(request);

    for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(config_.n());
         ++r) {
        if (!broadcast && r != believed_leader_) continue;
        const sim::NodeId to = config_.node_of(r);
        outbox.send(to, net::wrap(net::Channel::Pbft,
                                  seal_frame(crypto, *macs_, node_.id(), to,
                                             PbftType::Request, body)));
    }
}

void PbftClient::arm_retransmit(std::uint64_t number) {
    fabric_.simulator().after(retransmit_timeout_, [this, number]() {
        if (!pending_.contains(number)) return;
        enclave::CostMeter meter;
        enclave::CostedCrypto crypto(profile_, meter);
        net::Outbox outbox(fabric_, node_);
        send_request(crypto, outbox, number, true);
        outbox.flush(meter);
        arm_retransmit(number);
    });
}

void PbftClient::on_message(sim::NodeId from, ByteView payload) {
    const int replica = config_.replica_of(from);
    if (replica < 0) return;

    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    crypto.charge_dispatch();

    auto frame = open_frame(crypto, *macs_, from, node_.id(), payload);
    if (!frame || frame->first != PbftType::Reply) {
        node_.charge(meter.take());
        return;
    }

    try {
        Reader r(frame->second);
        Reply reply = Reply::decode(r);
        r.expect_done();
        if (reply.replica != static_cast<std::uint32_t>(replica)) {
            node_.charge(meter.take());
            return;
        }

        // Read-one replies complete immediately (single source).
        if (const auto ro = read_ones_.find(reply.request_id.number);
            ro != read_ones_.end()) {
            Callback callback = std::move(ro->second);
            read_ones_.erase(ro);
            node_.exec(meter.take(),
                       [callback = std::move(callback),
                        result = std::move(reply.result)]() mutable {
                           if (callback) callback(std::move(result));
                       });
            return;
        }

        const auto it = pending_.find(reply.request_id.number);
        if (it == pending_.end()) {
            node_.charge(meter.take());
            return;
        }
        Pending& pending = it->second;
        believed_leader_ = config_.leader_of(reply.view);

        Writer key;
        key.raw(reply.request_digest);
        key.bytes(reply.result);
        Bytes vote = std::move(key).take();

        const auto previous = pending.votes.find(reply.replica);
        if (previous != pending.votes.end()) {
            if (previous->second == vote) {
                node_.charge(meter.take());
                return;
            }
            --pending.tally[previous->second];
        }
        pending.votes[reply.replica] = vote;
        const int count = ++pending.tally[vote];

        if (count >= config_.reply_quorum()) {
            Callback callback = std::move(pending.callback);
            pending_.erase(it);
            node_.exec(meter.take(),
                       [callback = std::move(callback),
                        result = std::move(reply.result)]() mutable {
                           if (callback) callback(std::move(result));
                       });
            return;
        }
    } catch (const DecodeError&) {
    }
    node_.charge(meter.take());
}

}  // namespace troxy::baselines::pbft
