// Compact PBFT (Castro & Liskov) — the 3f+1 substrate Prophecy runs on.
//
// Normal case: REQUEST → PRE-PREPARE (leader) → PREPARE (2f matching from
// distinct non-leader replicas) → COMMIT (2f+1 matching) → execute →
// REPLY. The client (here: the Prophecy middlebox) accepts a result after
// f+1 matching replies. A READ-ONE message implements the read-only
// optimization Prophecy's fast path uses: one replica executes the read
// against its current state and answers directly.
//
// Message authentication uses pairwise link MACs (the classic PBFT MAC
// authenticators): every wire message is `type ‖ body ‖ HMAC(link key)`.
// View changes follow the same union-of-prepared-requests scheme as our
// Hybster implementation; PBFT's full proof-carrying new-view validation
// is simplified (documented in DESIGN.md) — sufficient for the baseline
// role this protocol plays in the evaluation.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "hybster/messages.hpp"
#include "hybster/replica.hpp"  // FaultProfile
#include "hybster/service.hpp"
#include "net/fabric.hpp"
#include "net/mac_table.hpp"
#include "net/outbox.hpp"

namespace troxy::baselines::pbft {

using hybster::Reply;
using hybster::Request;
using hybster::SequenceNumber;
using hybster::ViewNumber;

struct Config {
    int f = 1;
    std::vector<sim::NodeId> replicas;
    SequenceNumber checkpoint_interval = 128;
    sim::Duration view_change_timeout = sim::milliseconds(500);

    [[nodiscard]] int n() const noexcept {
        return static_cast<int>(replicas.size());
    }
    [[nodiscard]] int prepared_quorum() const noexcept { return 2 * f; }
    [[nodiscard]] int commit_quorum() const noexcept { return 2 * f + 1; }
    [[nodiscard]] int reply_quorum() const noexcept { return f + 1; }
    [[nodiscard]] std::uint32_t leader_of(ViewNumber view) const noexcept {
        return static_cast<std::uint32_t>(view %
                                          static_cast<ViewNumber>(n()));
    }
    [[nodiscard]] sim::NodeId node_of(std::uint32_t replica) const {
        return replicas.at(replica);
    }
    [[nodiscard]] int replica_of(sim::NodeId node) const noexcept {
        for (std::size_t i = 0; i < replicas.size(); ++i) {
            if (replicas[i] == node) return static_cast<int>(i);
        }
        return -1;
    }
    void validate() const;
};

enum class PbftType : std::uint8_t {
    Request = 1,
    PrePrepare = 2,
    Prepare = 3,
    Commit = 4,
    Reply = 5,
    ReadOne = 6,
    ViewChange = 7,
    NewView = 8,
};

/// Authenticated wire helpers (exposed for tests).
Bytes seal_frame(enclave::CostedCrypto& crypto, const net::MacTable& macs,
                 sim::NodeId from, sim::NodeId to, PbftType type,
                 ByteView body);
std::optional<std::pair<PbftType, Bytes>> open_frame(
    enclave::CostedCrypto& crypto, const net::MacTable& macs,
    sim::NodeId from, sim::NodeId to, ByteView frame);

class PbftReplica {
  public:
    PbftReplica(net::Fabric& fabric, sim::Node& node, Config config,
                std::uint32_t replica_id, hybster::ServicePtr service,
                std::shared_ptr<net::MacTable> macs,
                const sim::CostProfile& profile);

    void on_message(sim::NodeId from, ByteView payload);

    void set_faults(const hybster::FaultProfile& faults) noexcept {
        faults_ = faults;
    }

    [[nodiscard]] ViewNumber view() const noexcept { return view_; }
    [[nodiscard]] SequenceNumber last_executed() const noexcept {
        return last_executed_;
    }
    [[nodiscard]] bool is_leader() const noexcept {
        return config_.leader_of(view_) == id_;
    }
    [[nodiscard]] std::uint64_t view_changes() const noexcept {
        return view_change_count_;
    }
    [[nodiscard]] hybster::Service& service() noexcept { return *service_; }

  private:
    struct LogEntry {
        std::optional<Request> request;  // from the pre-prepare
        crypto::Sha256Digest digest{};
        ViewNumber view = 0;
        std::set<std::uint32_t> prepares;
        std::set<std::uint32_t> commits;
        bool committed_sent = false;
        bool executed = false;
    };

    void handle_request(enclave::CostedCrypto& crypto, net::Outbox& outbox,
                        sim::NodeId from, Request&& request);
    void handle_pre_prepare(enclave::CostedCrypto& crypto,
                            net::Outbox& outbox, sim::NodeId from,
                            ByteView body);
    void handle_prepare(enclave::CostedCrypto& crypto, net::Outbox& outbox,
                        sim::NodeId from, ByteView body);
    void handle_commit(enclave::CostedCrypto& crypto, net::Outbox& outbox,
                       sim::NodeId from, ByteView body);
    void handle_read_one(enclave::CostedCrypto& crypto, net::Outbox& outbox,
                         sim::NodeId from, Request&& request);
    void handle_view_change(enclave::CostedCrypto& crypto,
                            net::Outbox& outbox, sim::NodeId from,
                            ByteView body);
    void handle_new_view(enclave::CostedCrypto& crypto, net::Outbox& outbox,
                         sim::NodeId from, ByteView body);

    void maybe_send_commit(enclave::CostedCrypto& crypto, net::Outbox& outbox,
                           SequenceNumber seq);
    void try_execute(enclave::CostedCrypto& crypto, net::Outbox& outbox);
    void send_reply(enclave::CostedCrypto& crypto, net::Outbox& outbox,
                    const Request& request, Reply&& reply);
    void broadcast(enclave::CostedCrypto& crypto, net::Outbox& outbox,
                   PbftType type, ByteView body);
    void start_view_change(ViewNumber new_view);
    void arm_progress_timer();

    net::Fabric& fabric_;
    sim::Node& node_;
    Config config_;
    std::uint32_t id_;
    hybster::ServicePtr service_;
    std::shared_ptr<net::MacTable> macs_;
    const sim::CostProfile& profile_;
    hybster::FaultProfile faults_;

    ViewNumber view_ = 0;
    SequenceNumber next_seq_ = 1;
    SequenceNumber last_executed_ = 0;
    std::map<SequenceNumber, LogEntry> log_;
    std::map<hybster::RequestId, Reply> executed_replies_;
    std::map<hybster::RequestId, Request> forwarded_;

    void reissue_forwarded(enclave::CostedCrypto& crypto,
                           net::Outbox& outbox);

    // View change state (simplified; see header comment).
    std::map<ViewNumber, std::map<std::uint32_t, Bytes>> view_changes_rx_;
    ViewNumber highest_vc_sent_ = 0;
    bool in_view_change_ = false;
    std::uint64_t view_change_count_ = 0;
    std::uint64_t timer_generation_ = 0;
    bool timer_armed_ = false;
};

/// PBFT client library (used by the Prophecy middlebox): request
/// submission, f+1 reply voting, read-one fast reads.
class PbftClient {
  public:
    using Callback = std::function<void(Bytes result)>;

    PbftClient(net::Fabric& fabric, sim::Node& node, Config config,
               std::shared_ptr<net::MacTable> macs,
               const sim::CostProfile& profile,
               sim::Duration retransmit_timeout = sim::milliseconds(2000));

    /// Fully ordered request through the BFT protocol.
    void invoke(Bytes payload, bool is_read, Callback callback);

    /// Read-only fast path: one replica executes against current state.
    void read_one(Bytes payload, std::uint32_t replica, Callback callback);

    void on_message(sim::NodeId from, ByteView payload);

  private:
    struct Pending {
        Bytes payload;
        std::uint8_t flags = 0;
        Callback callback;
        std::map<std::uint32_t, Bytes> votes;
        std::map<Bytes, int> tally;
    };

    void send_request(enclave::CostedCrypto& crypto, net::Outbox& outbox,
                      std::uint64_t number, bool broadcast);
    void arm_retransmit(std::uint64_t number);

    net::Fabric& fabric_;
    sim::Node& node_;
    Config config_;
    std::shared_ptr<net::MacTable> macs_;
    const sim::CostProfile& profile_;
    sim::Duration retransmit_timeout_;

    std::uint64_t next_number_ = 1;
    std::map<std::uint64_t, Pending> pending_;
    std::map<std::uint64_t, Callback> read_ones_;
    std::uint32_t believed_leader_ = 0;
};

}  // namespace troxy::baselines::pbft
