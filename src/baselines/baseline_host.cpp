#include "baselines/baseline_host.hpp"

#include "common/serialize.hpp"
#include "net/client_framing.hpp"
#include "net/envelope.hpp"
#include "net/outbox.hpp"

namespace troxy::baselines {

BaselineReplicaHost::BaselineReplicaHost(
    net::Fabric& fabric, sim::Node& node, hybster::Config config,
    std::uint32_t replica_id, hybster::ServicePtr service,
    std::shared_ptr<enclave::TrinX> trinx,
    crypto::X25519Keypair channel_identity,
    ClientKeyProvider client_key_provider, const sim::CostProfile& profile)
    : fabric_(fabric),
      node_(node),
      config_(config),
      replica_id_(replica_id),
      identity_(channel_identity),
      client_keys_(std::move(client_key_provider)),
      profile_(profile) {
    hybster::Replica::Hooks hooks;

    // Clients attach one certificate per replica; we check ours.
    hooks.verify_request = [this](enclave::CostedCrypto& crypto,
                                  const hybster::Request& request) {
        if (request.auth.size() <=
            static_cast<std::size_t>(replica_id_)) {
            return false;
        }
        const Bytes key = client_keys_(request.id.client);
        return crypto.mac_verify(key, request.signed_view(),
                                 request.auth[replica_id_]);
    };

    // Replies are authenticated with the pairwise secret and sent over
    // the client's secure channel (each replica replies directly; the
    // client-side library does the voting).
    hooks.deliver_reply = [this](enclave::CostedCrypto& crypto,
                                 net::Outbox& outbox,
                                 const hybster::Request& request,
                                 hybster::Reply reply) {
        const sim::NodeId client = request.id.client;
        const auto channel = channels_.find(client);
        if (channel == channels_.end() ||
            !channel->second.established()) {
            return;  // client not connected here
        }
        const Bytes key = client_keys_(client);
        const crypto::HmacTag tag =
            crypto.mac(key, reply.certified_view());
        std::copy(tag.begin(), tag.end(), reply.cert.begin());

        const Bytes encoded = encode_message(hybster::Message(reply));
        crypto.charge(profile_.aead(encoded.size()));
        outbox.send(client,
                    net::wrap(net::Channel::Client,
                              net::frame_client(
                                  net::ClientFrame::Record,
                                  channel->second.protect(encoded))));
    };

    replica_ = std::make_unique<hybster::Replica>(
        fabric, node, config, replica_id, std::move(service),
        std::move(trinx), profile, std::move(hooks));
}

void BaselineReplicaHost::attach() {
    fabric_.attach(node_.id(), [this](sim::NodeId from, Bytes message) {
        on_message(from, std::move(message));
    });
}

void BaselineReplicaHost::on_message(sim::NodeId from, Bytes message) {
    if (faults_.crashed) return;
    auto unwrapped = net::unwrap(message);
    if (!unwrapped) return;
    auto& [channel, payload] = *unwrapped;

    switch (channel) {
        case net::Channel::Hybster:
            replica_->on_message(from, payload);
            return;
        case net::Channel::Client:
            handle_client_frame(from, payload);
            return;
        default:
            return;
    }
}

void BaselineReplicaHost::handle_client_frame(sim::NodeId from,
                                              ByteView payload) {
    auto frame = net::unframe_client(payload);
    if (!frame) return;

    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    net::Outbox outbox(fabric_, node_);
    crypto.charge_dispatch();

    switch (frame->first) {
        case net::ClientFrame::Hello: {
            auto [it, inserted] = channels_.try_emplace(from, identity_);
            if (!inserted) {
                channels_.erase(it);
                it = channels_.try_emplace(from, identity_).first;
            }
            Writer seed;
            seed.u32(node_.id());
            seed.u64(++handshake_counter_);
            auto server_hello =
                it->second.accept(crypto, frame->second, seed.data());
            if (server_hello) {
                outbox.send(from,
                            net::wrap(net::Channel::Client,
                                      net::frame_client(
                                          net::ClientFrame::ServerHello,
                                          *server_hello)));
            } else {
                channels_.erase(from);
            }
            break;
        }
        case net::ClientFrame::Record: {
            const auto it = channels_.find(from);
            if (it == channels_.end() || !it->second.established()) break;
            crypto.charge(profile_.aead(frame->second.size()));
            for (Bytes& plaintext : it->second.unprotect(frame->second)) {
                auto decoded = hybster::decode_message(plaintext);
                if (!decoded) continue;
                auto* request = std::get_if<hybster::Request>(&*decoded);
                if (!request) continue;
                if (request->id.client != from) continue;  // impersonation
                outbox.defer([this, req = std::move(*request)]() {
                    // submit() re-dispatches optimistic reads internally.
                    replica_->submit(req);
                });
            }
            break;
        }
        case net::ClientFrame::ServerHello:
            break;
    }
    outbox.flush(meter);
}

}  // namespace troxy::baselines
