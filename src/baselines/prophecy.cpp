#include "baselines/prophecy.hpp"

#include "common/serialize.hpp"
#include "net/client_framing.hpp"
#include "net/envelope.hpp"
#include "net/outbox.hpp"

namespace troxy::baselines {

ProphecyMiddlebox::ProphecyMiddlebox(
    net::Fabric& fabric, sim::Node& node, pbft::Config config,
    std::shared_ptr<net::MacTable> macs,
    crypto::X25519Keypair channel_identity, troxy_core::Classifier classifier,
    const sim::CostProfile& profile, Options options, std::uint64_t seed)
    : fabric_(fabric),
      node_(node),
      config_(std::move(config)),
      identity_(channel_identity),
      classifier_(std::move(classifier)),
      profile_(profile),
      options_(options),
      rng_(seed ^ 0x70726f7068ULL) {
    bft_client_ = std::make_unique<pbft::PbftClient>(
        fabric, node, config_, std::move(macs), profile);
}

void ProphecyMiddlebox::attach() {
    fabric_.attach(node_.id(), [this](sim::NodeId from, Bytes message) {
        on_message(from, std::move(message));
    });
}

void ProphecyMiddlebox::on_message(sim::NodeId from, Bytes message) {
    auto unwrapped = net::unwrap(message);
    if (!unwrapped) return;
    auto& [channel, payload] = *unwrapped;

    switch (channel) {
        case net::Channel::Pbft:
            bft_client_->on_message(from, payload);
            return;
        case net::Channel::Client:
            handle_client_frame(from, payload);
            return;
        default:
            return;
    }
}

void ProphecyMiddlebox::handle_client_frame(sim::NodeId from,
                                            ByteView payload) {
    auto frame = net::unframe_client(payload);
    if (!frame) return;

    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    net::Outbox outbox(fabric_, node_);
    crypto.charge_dispatch();

    switch (frame->first) {
        case net::ClientFrame::Hello: {
            auto [it, inserted] = connections_.try_emplace(from, identity_);
            if (!inserted) {
                connections_.erase(it);
                it = connections_.try_emplace(from, identity_).first;
            }
            Writer seed;
            seed.u32(node_.id());
            seed.u64(++handshake_counter_);
            auto hello =
                it->second.channel.accept(crypto, frame->second, seed.data());
            if (hello) {
                outbox.send(from, net::wrap(net::Channel::Client,
                                            net::frame_client(
                                                net::ClientFrame::ServerHello,
                                                *hello)));
            } else {
                connections_.erase(from);
            }
            break;
        }
        case net::ClientFrame::Record: {
            const auto it = connections_.find(from);
            if (it == connections_.end() ||
                !it->second.channel.established()) {
                break;
            }
            crypto.charge(profile_.aead(frame->second.size()));
            for (Bytes& app_request :
                 it->second.channel.unprotect(frame->second)) {
                outbox.defer([this, from,
                              request = std::move(app_request)]() {
                    handle_app_request(from, std::move(request));
                });
            }
            break;
        }
        case net::ClientFrame::ServerHello:
            break;
    }
    outbox.flush(meter);
}

void ProphecyMiddlebox::handle_app_request(sim::NodeId client,
                                           Bytes app_request) {
    const auto conn = connections_.find(client);
    if (conn == connections_.end()) return;
    const std::uint64_t slot = conn->second.next_assign++;

    const hybster::RequestInfo info = classifier_(app_request);
    if (!info.is_read) {
        // Writes always go through the full protocol; the sketch is NOT
        // invalidated (Prophecy cannot map writes to cached reads — the
        // source of its weak consistency).
        ++stats_.ordered;
        bft_client_->invoke(app_request, false,
                            [this, client, slot](Bytes result) {
                                release_reply(client, slot,
                                              std::move(result));
                            });
        return;
    }

    const Bytes sketch_key = crypto::sha256_bytes(app_request);
    const auto hit = sketch_.find(sketch_key);
    if (hit == sketch_.end()) {
        ++stats_.sketch_misses;
        ordered_read_through(client, slot, std::move(app_request), true);
        return;
    }

    // Fast path: one random replica, compare against the sketch.
    const auto replica = static_cast<std::uint32_t>(
        rng_.next_below(static_cast<std::uint64_t>(config_.n())));
    const crypto::Sha256Digest expected = hit->second;
    bft_client_->read_one(
        app_request, replica,
        [this, client, slot, expected,
         request = app_request](Bytes result) mutable {
            if (constant_time_equal(crypto::sha256(result), expected)) {
                ++stats_.fast_hits;
                release_reply(client, slot, std::move(result));
            } else {
                // Replica disagrees with the sketch (stale sketch after a
                // write, or a faulty replica): fall back to an ordered
                // read and refresh the sketch.
                ++stats_.fast_conflicts;
                ordered_read_through(client, slot, std::move(request), true);
            }
        });
}

void ProphecyMiddlebox::ordered_read_through(sim::NodeId client,
                                             std::uint64_t slot,
                                             Bytes app_request,
                                             bool update_sketch) {
    ++stats_.ordered;
    const Bytes sketch_key = crypto::sha256_bytes(app_request);
    bft_client_->invoke(
        std::move(app_request), true,
        [this, client, slot, sketch_key, update_sketch](Bytes result) {
            if (update_sketch) {
                if (sketch_.size() >= options_.sketch_capacity) {
                    sketch_.erase(sketch_.begin());
                }
                sketch_[sketch_key] = crypto::sha256(result);
            }
            release_reply(client, slot, std::move(result));
        });
}

void ProphecyMiddlebox::release_reply(sim::NodeId client, std::uint64_t slot,
                                      Bytes app_reply) {
    const auto conn = connections_.find(client);
    if (conn == connections_.end()) return;
    Connection& connection = conn->second;

    connection.ready.emplace(slot, std::move(app_reply));

    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    net::Outbox outbox(fabric_, node_);
    while (true) {
        const auto next = connection.ready.find(connection.next_release);
        if (next == connection.ready.end()) break;
        crypto.charge(profile_.aead(next->second.size()));
        Bytes record = connection.channel.protect(next->second);
        outbox.send(client,
                    net::wrap(net::Channel::Client,
                              net::frame_client(net::ClientFrame::Record,
                                                record)));
        connection.ready.erase(next);
        ++connection.next_release;
    }
    outbox.flush(meter);
}

}  // namespace troxy::baselines
