// Crypto primitives against published test vectors plus behavioural
// properties (tamper detection, replay rejection, fast-mode equivalence).
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/aead.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/fastmode.hpp"
#include "crypto/hmac.hpp"
#include "crypto/poly1305.hpp"
#include "crypto/sha256.hpp"
#include "crypto/x25519.hpp"

namespace troxy::crypto {
namespace {

// ----------------------------------------------------------------- SHA-256

TEST(Sha256, EmptyInput) {
    EXPECT_EQ(hex_encode(sha256({})),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b8"
              "55");
}

TEST(Sha256, Abc) {
    EXPECT_EQ(hex_encode(sha256(to_bytes("abc"))),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f2001"
              "5ad");
}

TEST(Sha256, TwoBlockMessage) {
    EXPECT_EQ(hex_encode(sha256(to_bytes(
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db0"
              "6c1");
}

TEST(Sha256, MillionAs) {
    Sha256 hasher;
    const Bytes chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) hasher.update(chunk);
    EXPECT_EQ(hex_encode(hasher.finish()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112"
              "cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
    const Bytes data = to_bytes("the quick brown fox jumps over the lazy dog");
    for (std::size_t split = 0; split <= data.size(); ++split) {
        Sha256 hasher;
        hasher.update(ByteView(data).first(split));
        hasher.update(ByteView(data).subspan(split));
        EXPECT_EQ(hasher.finish(), sha256(data)) << "split=" << split;
    }
}

// --------------------------------------------------------------- HMAC/HKDF

TEST(Hmac, Rfc4231Case1) {
    const Bytes key(20, 0x0b);
    EXPECT_EQ(hex_encode(hmac_sha256(key, to_bytes("Hi There"))),
              "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32c"
              "ff7");
}

TEST(Hmac, Rfc4231Case2) {
    EXPECT_EQ(hex_encode(hmac_sha256(to_bytes("Jefe"),
                                     to_bytes("what do ya want for "
                                              "nothing?"))),
              "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3"
              "843");
}

TEST(Hmac, Rfc4231Case3LongKeyData) {
    const Bytes key(20, 0xaa);
    const Bytes data(50, 0xdd);
    EXPECT_EQ(hex_encode(hmac_sha256(key, data)),
              "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced56"
              "5fe");
}

TEST(Hmac, Rfc4231Case6KeyLargerThanBlock) {
    const Bytes key(131, 0xaa);
    EXPECT_EQ(hex_encode(hmac_sha256(
                  key, to_bytes("Test Using Larger Than Block-Size Key - "
                                "Hash Key First"))),
              "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37"
              "f54");
}

TEST(Hmac, VerifyRejectsTamperedTag) {
    const Bytes key = to_bytes("secret");
    const Bytes data = to_bytes("message");
    HmacTag tag = hmac_sha256(key, data);
    EXPECT_TRUE(hmac_verify(key, data, tag));
    tag[0] ^= 1;
    EXPECT_FALSE(hmac_verify(key, data, tag));
}

TEST(Hkdf, Rfc5869Case1) {
    const Bytes ikm(22, 0x0b);
    const Bytes salt = hex_decode("000102030405060708090a0b0c");
    const Bytes info = hex_decode("f0f1f2f3f4f5f6f7f8f9");
    const Bytes okm = hkdf(salt, ikm, info, 42);
    EXPECT_EQ(hex_encode(okm),
              "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c"
              "5bf34007208d5b887185865");
}

TEST(Hkdf, Rfc5869Case3NoSaltNoInfo) {
    const Bytes ikm(22, 0x0b);
    const Bytes okm = hkdf({}, ikm, {}, 42);
    EXPECT_EQ(hex_encode(okm),
              "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738"
              "d2d9d201395faa4b61a96c8");
}

// ---------------------------------------------------------------- ChaCha20

TEST(ChaCha20, Rfc8439BlockFunction) {
    ChaChaKey key;
    for (std::size_t i = 0; i < key.size(); ++i) {
        key[i] = static_cast<std::uint8_t>(i);
    }
    ChaChaNonce nonce{};
    nonce[3] = 0x09;
    nonce[7] = 0x4a;
    const auto block = chacha20_block(key, 1, nonce);
    EXPECT_EQ(hex_encode(ByteView(block.data(), 16)),
              "10f1e7e4d13b5915500fdd1fa32071c4");
}

TEST(ChaCha20, Rfc8439Encryption) {
    ChaChaKey key;
    for (std::size_t i = 0; i < key.size(); ++i) {
        key[i] = static_cast<std::uint8_t>(i);
    }
    ChaChaNonce nonce{};
    nonce[7] = 0x4a;
    const Bytes plaintext = to_bytes(
        "Ladies and Gentlemen of the class of '99: If I could offer you "
        "only one tip for the future, sunscreen would be it.");
    const Bytes ciphertext = chacha20_xor(key, nonce, 1, plaintext);
    EXPECT_EQ(hex_encode(ByteView(ciphertext.data(), 16)),
              "6e2e359a2568f98041ba0728dd0d6981");
    // Decryption is the same operation.
    EXPECT_EQ(chacha20_xor(key, nonce, 1, ciphertext), plaintext);
}

// ---------------------------------------------------------------- Poly1305

TEST(Poly1305, Rfc8439Vector) {
    Poly1305Key key{};
    const Bytes key_bytes = hex_decode(
        "85d6be7857556d337f4452fe42d506a8"
        "0103808afb0db2fd4abff6af4149f51b");
    std::copy(key_bytes.begin(), key_bytes.end(), key.begin());
    const Bytes message = to_bytes("Cryptographic Forum Research Group");
    EXPECT_EQ(hex_encode(poly1305(key, message)),
              "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(Poly1305, EmptyMessage) {
    Poly1305Key key{};
    key[0] = 1;
    const Poly1305Tag tag = poly1305(key, {});
    // s = key[16..32] = 0 and empty message → tag must be all zero.
    for (const std::uint8_t byte : tag) EXPECT_EQ(byte, 0);
}

// -------------------------------------------------------------------- AEAD

TEST(Aead, Rfc8439SealVector) {
    ChaChaKey key;
    const Bytes key_bytes = hex_decode(
        "808182838485868788898a8b8c8d8e8f"
        "909192939495969798999a9b9c9d9e9f");
    std::copy(key_bytes.begin(), key_bytes.end(), key.begin());
    ChaChaNonce nonce{};
    const Bytes nonce_bytes = hex_decode("070000004041424344454647");
    std::copy(nonce_bytes.begin(), nonce_bytes.end(), nonce.begin());
    const Bytes aad = hex_decode("50515253c0c1c2c3c4c5c6c7");
    const Bytes plaintext = to_bytes(
        "Ladies and Gentlemen of the class of '99: If I could offer you "
        "only one tip for the future, sunscreen would be it.");

    const Bytes sealed = aead_seal(key, nonce, aad, plaintext);
    ASSERT_EQ(sealed.size(), plaintext.size() + kAeadTagSize);
    EXPECT_EQ(hex_encode(ByteView(sealed.data(), 16)),
              "d31a8d34648e60db7b86afbc53ef7ec2");
    EXPECT_EQ(hex_encode(ByteView(sealed.data() + plaintext.size(), 16)),
              "1ae10b594f09e26a7e902ecbd0600691");

    const auto opened = aead_open(key, nonce, aad, sealed);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(*opened, plaintext);
}

TEST(Aead, RejectsTamperedCiphertext) {
    ChaChaKey key{};
    ChaChaNonce nonce{};
    const Bytes aad = to_bytes("header");
    Bytes sealed = aead_seal(key, nonce, aad, to_bytes("payload"));
    sealed[2] ^= 0x40;
    EXPECT_FALSE(aead_open(key, nonce, aad, sealed).has_value());
}

TEST(Aead, RejectsWrongAad) {
    ChaChaKey key{};
    ChaChaNonce nonce{};
    const Bytes sealed = aead_seal(key, nonce, to_bytes("a"), to_bytes("x"));
    EXPECT_FALSE(aead_open(key, nonce, to_bytes("b"), sealed).has_value());
}

TEST(Aead, RejectsTruncatedInput) {
    ChaChaKey key{};
    ChaChaNonce nonce{};
    EXPECT_FALSE(aead_open(key, nonce, {}, Bytes(8, 0)).has_value());
}

TEST(Aead, RecordNonceChangesPerSequence) {
    ChaChaNonce iv{};
    iv[0] = 0xff;
    const ChaChaNonce n0 = make_record_nonce(iv, 0);
    const ChaChaNonce n1 = make_record_nonce(iv, 1);
    EXPECT_EQ(n0, iv);  // sequence 0 leaves the IV unchanged
    EXPECT_NE(n0, n1);
}

TEST(Aead, SealInplaceMatchesSeal) {
    // The gather path seals the plaintext where it sits in the record
    // buffer; the result must be byte-identical to the copying seal for
    // every size class (empty, sub-block, block-aligned, multi-block).
    ChaChaKey key{};
    key[3] = 0x42;
    ChaChaNonce nonce{};
    nonce[1] = 0x07;
    const Bytes aad = to_bytes("record-aad");
    for (const std::size_t size : {0u, 1u, 63u, 64u, 65u, 1000u}) {
        Bytes plaintext(size);
        for (std::size_t i = 0; i < size; ++i) {
            plaintext[i] = static_cast<std::uint8_t>(i * 31 + 7);
        }
        const Bytes reference = aead_seal(key, nonce, aad, plaintext);

        Bytes buf = to_bytes("header-prefix");  // unrelated leading bytes
        const std::size_t offset = buf.size();
        buf.insert(buf.end(), plaintext.begin(), plaintext.end());
        aead_seal_inplace(key, nonce, aad, buf, offset);
        ASSERT_EQ(buf.size(), offset + reference.size());
        EXPECT_EQ(Bytes(buf.begin() + static_cast<std::ptrdiff_t>(offset),
                        buf.end()),
                  reference);
        EXPECT_EQ(Bytes(buf.begin(),
                        buf.begin() + static_cast<std::ptrdiff_t>(offset)),
                  to_bytes("header-prefix"));  // prefix untouched
    }
}

// ------------------------------------------------------------------ X25519

TEST(X25519, Rfc7748Vector1) {
    X25519Key scalar{}, point{};
    const Bytes s = hex_decode(
        "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
    const Bytes p = hex_decode(
        "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
    std::copy(s.begin(), s.end(), scalar.begin());
    std::copy(p.begin(), p.end(), point.begin());
    EXPECT_EQ(hex_encode(x25519(scalar, point)),
              "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28"
              "552");
}

TEST(X25519, Rfc7748Vector2) {
    X25519Key scalar{}, point{};
    const Bytes s = hex_decode(
        "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
    const Bytes p = hex_decode(
        "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
    std::copy(s.begin(), s.end(), scalar.begin());
    std::copy(p.begin(), p.end(), point.begin());
    EXPECT_EQ(hex_encode(x25519(scalar, point)),
              "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7"
              "957");
}

TEST(X25519, DiffieHellmanAgreement) {
    const X25519Keypair alice = x25519_keypair_from_seed(to_bytes("alice"));
    const X25519Keypair bob = x25519_keypair_from_seed(to_bytes("bob"));
    const X25519Key shared_a = x25519(alice.private_key, bob.public_key);
    const X25519Key shared_b = x25519(bob.private_key, alice.public_key);
    EXPECT_EQ(shared_a, shared_b);
    EXPECT_NE(hex_encode(shared_a), std::string(64, '0'));
}

TEST(X25519, DistinctSeedsDistinctKeys) {
    const X25519Keypair a = x25519_keypair_from_seed(to_bytes("one"));
    const X25519Keypair b = x25519_keypair_from_seed(to_bytes("two"));
    EXPECT_NE(a.public_key, b.public_key);
}

// --------------------------------------------------------------- fast mode

class FastModeTest : public ::testing::Test {
  protected:
    void TearDown() override { set_fast_crypto(false); }
};

TEST_F(FastModeTest, HmacStillVerifiesAndRejects) {
    set_fast_crypto(true);
    const Bytes key = to_bytes("k");
    const Bytes data = to_bytes("d");
    HmacTag tag = hmac_sha256(key, data);
    EXPECT_TRUE(hmac_verify(key, data, tag));
    tag[5] ^= 1;
    EXPECT_FALSE(hmac_verify(key, data, tag));
    EXPECT_FALSE(hmac_verify(to_bytes("other"), data, hmac_sha256(key, data)));
}

TEST_F(FastModeTest, AeadRoundTripAndTamperDetection) {
    set_fast_crypto(true);
    ChaChaKey key{};
    key[0] = 7;
    ChaChaNonce nonce{};
    const Bytes plaintext = to_bytes("fast payload");
    Bytes sealed = aead_seal(key, nonce, to_bytes("aad"), plaintext);
    EXPECT_EQ(sealed.size(), plaintext.size() + kAeadTagSize);
    auto opened = aead_open(key, nonce, to_bytes("aad"), sealed);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(*opened, plaintext);
    sealed[0] ^= 1;
    EXPECT_FALSE(aead_open(key, nonce, to_bytes("aad"), sealed).has_value());
}

TEST_F(FastModeTest, SealInplaceMatchesSeal) {
    set_fast_crypto(true);
    ChaChaKey key{};
    key[0] = 9;
    ChaChaNonce nonce{};
    const Bytes aad = to_bytes("a");
    const Bytes plaintext = to_bytes("fast gather payload");
    const Bytes reference = aead_seal(key, nonce, aad, plaintext);
    Bytes buf = to_bytes("hdr");
    buf.insert(buf.end(), plaintext.begin(), plaintext.end());
    aead_seal_inplace(key, nonce, aad, buf, 3);
    EXPECT_EQ(Bytes(buf.begin() + 3, buf.end()), reference);
}

TEST_F(FastModeTest, SizesMatchRealMode) {
    const Bytes data = to_bytes("some data");
    const Bytes key = to_bytes("key");
    const auto real = hmac_sha256(key, data);
    set_fast_crypto(true);
    const auto fast = hmac_sha256(key, data);
    EXPECT_EQ(real.size(), fast.size());
    EXPECT_EQ(sha256(data).size(), kSha256DigestSize);
}

}  // namespace
}  // namespace troxy::crypto
