#include <gtest/gtest.h>

#include <cmath>

#include "common/bytes.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"

namespace troxy {
namespace {

TEST(Bytes, HexRoundTrip) {
    const Bytes data = {0x00, 0x01, 0xab, 0xff};
    EXPECT_EQ(hex_encode(data), "0001abff");
    EXPECT_EQ(hex_decode("0001abff"), data);
    EXPECT_EQ(hex_decode("0001ABFF"), data);
}

TEST(Bytes, HexDecodeRejectsBadInput) {
    EXPECT_THROW(hex_decode("abc"), std::invalid_argument);   // odd length
    EXPECT_THROW(hex_decode("zz"), std::invalid_argument);    // non-hex
}

TEST(Bytes, StringConversionRoundTrip) {
    EXPECT_EQ(to_string(to_bytes("hello")), "hello");
    EXPECT_TRUE(to_bytes("").empty());
}

TEST(Bytes, ConstantTimeEqual) {
    const Bytes a = to_bytes("same");
    const Bytes b = to_bytes("same");
    const Bytes c = to_bytes("diff");
    EXPECT_TRUE(constant_time_equal(a, b));
    EXPECT_FALSE(constant_time_equal(a, c));
    EXPECT_FALSE(constant_time_equal(a, to_bytes("longer string")));
}

TEST(Bytes, Concat) {
    EXPECT_EQ(concat(to_bytes("ab"), to_bytes("cd")), to_bytes("abcd"));
    EXPECT_EQ(concat(to_bytes("a"), to_bytes("b"), to_bytes("c")),
              to_bytes("abc"));
}

TEST(Rng, Deterministic) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next()) ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowStaysInRange) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.next_below(17), 17u);
    }
    // Bound of 1 always yields 0.
    EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowRoughlyUniform) {
    Rng rng(8);
    std::array<int, 10> histogram{};
    constexpr int kSamples = 100'000;
    for (int i = 0; i < kSamples; ++i) {
        ++histogram[rng.next_below(10)];
    }
    for (const int count : histogram) {
        EXPECT_NEAR(count, kSamples / 10, kSamples / 100);
    }
}

TEST(Rng, NormalHasExpectedMoments) {
    Rng rng(9);
    double sum = 0, sum_sq = 0;
    constexpr int kSamples = 200'000;
    for (int i = 0; i < kSamples; ++i) {
        const double x = rng.next_normal(100.0, 20.0);
        sum += x;
        sum_sq += x * x;
    }
    const double mean = sum / kSamples;
    const double variance = sum_sq / kSamples - mean * mean;
    EXPECT_NEAR(mean, 100.0, 0.5);
    EXPECT_NEAR(std::sqrt(variance), 20.0, 0.5);
}

TEST(Rng, ExponentialMean) {
    Rng rng(10);
    double sum = 0;
    constexpr int kSamples = 200'000;
    for (int i = 0; i < kSamples; ++i) sum += rng.next_exponential(5.0);
    EXPECT_NEAR(sum / kSamples, 5.0, 0.1);
}

TEST(Rng, ForkedStreamsIndependent) {
    Rng parent(11);
    Rng child_a = parent.fork(1);
    Rng child_b = parent.fork(2);
    EXPECT_NE(child_a.next(), child_b.next());
}

TEST(Serialize, IntegerRoundTrip) {
    Writer w;
    w.u8(0xab);
    w.u16(0x1234);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefULL);
    Reader r(w.data());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u16(), 0x1234);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
    EXPECT_TRUE(r.done());
}

TEST(Serialize, BytesAndStrings) {
    Writer w;
    w.bytes(to_bytes("payload"));
    w.str("text");
    Reader r(w.data());
    EXPECT_EQ(r.bytes(), to_bytes("payload"));
    EXPECT_EQ(r.str(), "text");
    r.expect_done();
}

TEST(Serialize, TruncatedInputThrows) {
    Writer w;
    w.u64(1);
    const Bytes data = w.data();
    Reader r(ByteView(data).first(4));
    EXPECT_THROW(r.u64(), DecodeError);
}

TEST(Serialize, LengthPrefixBeyondInputThrows) {
    Writer w;
    w.u32(1000);  // claims 1000 bytes follow
    Reader r(w.data());
    EXPECT_THROW(r.bytes(), DecodeError);
}

TEST(Serialize, TrailingGarbageDetected) {
    Writer w;
    w.u8(1);
    w.u8(2);
    Reader r(w.data());
    r.u8();
    EXPECT_THROW(r.expect_done(), DecodeError);
}

TEST(Serialize, EmptyByteString) {
    Writer w;
    w.bytes({});
    Reader r(w.data());
    EXPECT_TRUE(r.bytes().empty());
}

TEST(Log, FormatSubstitution) {
    EXPECT_EQ(format("a {} c {}", 1, "two"), "a 1 c two");
    EXPECT_EQ(format("no placeholders"), "no placeholders");
    EXPECT_EQ(format("{} extra args ignored"), "{} extra args ignored");
}

TEST(Log, LevelGuardRestores) {
    const LogLevel before = log_level();
    {
        LogLevelGuard guard(LogLevel::Error);
        EXPECT_EQ(log_level(), LogLevel::Error);
    }
    EXPECT_EQ(log_level(), before);
}

}  // namespace
}  // namespace troxy
