#include <gtest/gtest.h>

#include "enclave/attestation.hpp"
#include "enclave/gate.hpp"
#include "enclave/meter.hpp"
#include "enclave/sealed.hpp"
#include "enclave/trinx.hpp"

namespace troxy::enclave {
namespace {

const sim::CostProfile kNative = sim::CostProfile::native();

TEST(CostMeter, AccumulatesAndResets) {
    CostMeter meter;
    meter.add(100);
    meter.add(50);
    EXPECT_EQ(meter.total(), 150u);
    EXPECT_EQ(meter.take(), 150u);
    EXPECT_EQ(meter.total(), 0u);
}

TEST(CostedCrypto, ChargesForOperations) {
    CostMeter meter;
    CostedCrypto crypto(kNative, meter);
    crypto.hash(Bytes(1024, 1));
    const sim::Duration after_hash = meter.total();
    EXPECT_GT(after_hash, 0u);
    crypto.mac(to_bytes("key"), Bytes(1024, 2));
    EXPECT_GT(meter.total(), after_hash);
}

TEST(CostedCrypto, RealResults) {
    CostMeter meter;
    CostedCrypto crypto(kNative, meter);
    EXPECT_EQ(crypto.hash(to_bytes("abc")), crypto::sha256(to_bytes("abc")));
    EXPECT_TRUE(crypto.mac_verify(to_bytes("k"), to_bytes("m"),
                                  crypto.mac(to_bytes("k"), to_bytes("m"))));
}

TEST(EnclaveGate, ChargesTransitions) {
    EnclaveGate gate("test", sim::EnclaveCosts::sgx_v1(), 16);
    CostMeter meter;
    gate.ecall(meter, "foo", 100, 50);
    EXPECT_GT(meter.total(), 0u);
    EXPECT_EQ(gate.transitions(), 1u);
    EXPECT_EQ(gate.distinct_ecalls(), 1u);
    gate.ecall(meter, "foo", 10, 0);
    EXPECT_EQ(gate.distinct_ecalls(), 1u);  // same entry point
    gate.ecall(meter, "bar", 10, 0);
    EXPECT_EQ(gate.distinct_ecalls(), 2u);
}

TEST(EnclaveGate, FreeCostsChargeNothing) {
    EnclaveGate gate("ctroxy", sim::EnclaveCosts::free(), 16);
    CostMeter meter;
    gate.ecall(meter, "foo", 1'000'000, 0);
    EXPECT_EQ(meter.total(), 0u);
}

TEST(EnclaveGate, EpcPagingChargedBeyondLimit) {
    sim::EnclaveCosts costs = sim::EnclaveCosts::sgx_v1();
    costs.epc_limit_bytes = 1024 * 1024;
    EnclaveGate gate("test", costs, 16);

    CostMeter meter;
    gate.allocate(512 * 1024);  // within EPC
    gate.touch(meter, 64 * 1024);
    EXPECT_EQ(meter.total(), 0u);

    gate.allocate(2 * 1024 * 1024);  // now over the limit
    gate.touch(meter, 64 * 1024);
    EXPECT_GT(meter.total(), 0u);

    gate.release(3 * 1024 * 1024 - 512 * 1024);
    CostMeter meter2;
    gate.touch(meter2, 64 * 1024);
    EXPECT_EQ(meter2.total(), 0u);
}

TEST(EnclaveGate, ReleaseNeverUnderflows) {
    EnclaveGate gate("test", sim::EnclaveCosts::sgx_v1(), 16);
    gate.allocate(100);
    gate.release(1000);
    EXPECT_EQ(gate.allocated_bytes(), 0u);
}

// ------------------------------------------------------------------ TrinX

TEST(TrinX, ContinuingCounterIsMonotonicAndGapFree) {
    TrinX trinx(0, to_bytes("group-key"));
    CostMeter meter;
    CostedCrypto crypto(kNative, meter);

    const auto first = trinx.certify_continuing(crypto, 1, to_bytes("a"));
    const auto second = trinx.certify_continuing(crypto, 1, to_bytes("b"));
    EXPECT_EQ(first.value, 1u);
    EXPECT_EQ(second.value, 2u);
    EXPECT_EQ(trinx.current(1), 2u);
    // Separate counters are independent.
    EXPECT_EQ(trinx.certify_continuing(crypto, 2, to_bytes("c")).value, 1u);
}

TEST(TrinX, VerifyAcceptsValidCertificate) {
    const Bytes key = to_bytes("shared");
    TrinX signer(3, key);
    TrinX verifier(1, key);
    CostMeter meter;
    CostedCrypto crypto(kNative, meter);

    const Bytes message = to_bytes("prepare");
    const auto certified = signer.certify_continuing(crypto, 7, message);
    EXPECT_TRUE(verifier.verify_continuing(crypto, 3, 7, certified.value,
                                           message,
                                           certified.certificate));
}

TEST(TrinX, VerifyRejectsWrongBinding) {
    const Bytes key = to_bytes("shared");
    TrinX signer(3, key);
    TrinX verifier(1, key);
    CostMeter meter;
    CostedCrypto crypto(kNative, meter);

    const Bytes message = to_bytes("prepare");
    const auto certified = signer.certify_continuing(crypto, 7, message);

    // Wrong replica id, counter, value or message must all fail.
    EXPECT_FALSE(verifier.verify_continuing(crypto, 2, 7, certified.value,
                                            message,
                                            certified.certificate));
    EXPECT_FALSE(verifier.verify_continuing(crypto, 3, 8, certified.value,
                                            message,
                                            certified.certificate));
    EXPECT_FALSE(verifier.verify_continuing(crypto, 3, 7,
                                            certified.value + 1, message,
                                            certified.certificate));
    EXPECT_FALSE(verifier.verify_continuing(crypto, 3, 7, certified.value,
                                            to_bytes("other"),
                                            certified.certificate));
}

TEST(TrinX, CannotEquivocate) {
    // A replica cannot certify two different messages with the same
    // counter value — each certify call consumes the next value.
    TrinX trinx(0, to_bytes("key"));
    CostMeter meter;
    CostedCrypto crypto(kNative, meter);
    const auto a = trinx.certify_continuing(crypto, 1, to_bytes("msg-a"));
    const auto b = trinx.certify_continuing(crypto, 1, to_bytes("msg-b"));
    EXPECT_NE(a.value, b.value);
}

TEST(TrinX, IndependentCertificates) {
    const Bytes key = to_bytes("shared");
    TrinX signer(2, key);
    TrinX verifier(0, key);
    CostMeter meter;
    CostedCrypto crypto(kNative, meter);

    const Bytes message = to_bytes("reply");
    const Certificate cert = signer.certify_independent(crypto, message);
    EXPECT_TRUE(verifier.verify_independent(crypto, 2, message, cert));
    EXPECT_FALSE(verifier.verify_independent(crypto, 1, message, cert));
    EXPECT_FALSE(
        verifier.verify_independent(crypto, 2, to_bytes("forged"), cert));
}

TEST(TrinX, IndependentAndContinuingDomainsSeparated) {
    const Bytes key = to_bytes("shared");
    TrinX signer(0, key);
    TrinX verifier(1, key);
    CostMeter meter;
    CostedCrypto crypto(kNative, meter);

    const Bytes message = to_bytes("m");
    const Certificate independent =
        signer.certify_independent(crypto, message);
    // An independent certificate must not validate as a continuing one.
    EXPECT_FALSE(verifier.verify_continuing(crypto, 0, 0, 1, message,
                                            independent));
}

TEST(TrinX, DifferentGroupKeysDoNotVerify) {
    TrinX signer(0, to_bytes("key-a"));
    TrinX verifier(1, to_bytes("key-b"));
    CostMeter meter;
    CostedCrypto crypto(kNative, meter);
    const Certificate cert =
        signer.certify_independent(crypto, to_bytes("m"));
    EXPECT_FALSE(verifier.verify_independent(crypto, 0, to_bytes("m"), cert));
}

// ------------------------------------------------------------ attestation

TEST(Attestation, IssueAndVerify) {
    AttestationAuthority authority(to_bytes("platform"));
    const Measurement m = measure("enclave-v1");
    const AttestationReport report = authority.issue(m, 42);
    EXPECT_TRUE(authority.verify(report, m, 42));
}

TEST(Attestation, RejectsWrongMeasurement) {
    AttestationAuthority authority(to_bytes("platform"));
    const AttestationReport report =
        authority.issue(measure("evil-enclave"), 42);
    EXPECT_FALSE(authority.verify(report, measure("enclave-v1"), 42));
}

TEST(Attestation, RejectsWrongNonce) {
    AttestationAuthority authority(to_bytes("platform"));
    const Measurement m = measure("enclave-v1");
    const AttestationReport report = authority.issue(m, 42);
    EXPECT_FALSE(authority.verify(report, m, 43));  // replayed report
}

TEST(Attestation, RejectsForgedSignature) {
    AttestationAuthority authority(to_bytes("platform"));
    const Measurement m = measure("enclave-v1");
    AttestationReport report = authority.issue(m, 1);
    report.signature[0] ^= 1;
    EXPECT_FALSE(authority.verify(report, m, 1));
}

TEST(Attestation, ProvisionReleasesSecretOnlyWhenValid) {
    AttestationAuthority authority(to_bytes("platform"));
    const Measurement good = measure("enclave-v1");
    const Bytes secret = to_bytes("group-key");

    const AttestationReport report = authority.issue(good, 9);
    const auto released = authority.provision(report, good, 9, secret);
    ASSERT_TRUE(released.has_value());
    EXPECT_EQ(*released, secret);

    const AttestationReport bad = authority.issue(measure("evil"), 9);
    EXPECT_FALSE(authority.provision(bad, good, 9, secret).has_value());
}

// ---------------------------------------------------------------- sealing

TEST(SealedBox, RoundTrip) {
    SealedBox box(to_bytes("platform"), measure("enclave-v1"));
    const Bytes data = to_bytes("session keys");
    const Bytes sealed = box.seal(data);
    EXPECT_NE(sealed, data);
    const auto unsealed = box.unseal(sealed);
    ASSERT_TRUE(unsealed.has_value());
    EXPECT_EQ(*unsealed, data);
}

TEST(SealedBox, TamperingDetected) {
    SealedBox box(to_bytes("platform"), measure("enclave-v1"));
    Bytes sealed = box.seal(to_bytes("secret"));
    sealed[sealed.size() / 2] ^= 1;
    EXPECT_FALSE(box.unseal(sealed).has_value());
}

TEST(SealedBox, DifferentMeasurementCannotUnseal) {
    SealedBox box_a(to_bytes("platform"), measure("enclave-v1"));
    SealedBox box_b(to_bytes("platform"), measure("enclave-v2"));
    const Bytes sealed = box_a.seal(to_bytes("secret"));
    EXPECT_FALSE(box_b.unseal(sealed).has_value());
}

TEST(SealedBox, UniqueNoncesAcrossSeals) {
    SealedBox box(to_bytes("platform"), measure("enclave-v1"));
    const Bytes a = box.seal(to_bytes("same"));
    const Bytes b = box.seal(to_bytes("same"));
    EXPECT_NE(a, b);  // counter-based nonces differ
}

TEST(ExternalizedBlob, ValidatesAgainstTrustedHash) {
    ExternalizedBlob blob;
    const Bytes untrusted = blob.store(to_bytes("cache line"));
    const auto loaded = blob.load(untrusted);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, to_bytes("cache line"));

    Bytes tampered = untrusted;
    tampered[0] ^= 1;
    EXPECT_FALSE(blob.load(tampered).has_value());
}

TEST(ExternalizedBlob, EmptyUntilStored) {
    ExternalizedBlob blob;
    EXPECT_FALSE(blob.has_value());
    EXPECT_FALSE(blob.load(to_bytes("anything")).has_value());
}

}  // namespace
}  // namespace troxy::enclave
