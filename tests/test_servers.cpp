// Server-side hosts that are otherwise only exercised indirectly: the
// standalone ("Jetty") server and the Prophecy middlebox front end.
#include <gtest/gtest.h>

#include "apps/echo_service.hpp"
#include "apps/kv_service.hpp"
#include "bench_support/cluster.hpp"
#include "http/http.hpp"
#include "http/page_service.hpp"
#include "net/client_framing.hpp"
#include "net/envelope.hpp"

namespace troxy {
namespace {

using apps::EchoService;
using apps::KvService;

TEST(StandaloneServer, ServesManySequentialRequests) {
    bench::StandaloneCluster::Params params;
    params.base.seed = 601;
    params.service = []() { return std::make_unique<KvService>(); };
    bench::StandaloneCluster cluster(params);
    auto& client = cluster.add_client();

    int done = 0;
    std::function<void(int)> loop;
    loop = [&](int i) {
        if (i == 20) return;
        const std::string key = "k" + std::to_string(i);
        client.send(KvService::make_put(key, std::to_string(i)),
                    [&, i](Bytes) {
                        ++done;
                        loop(i + 1);
                    });
    };
    client.start([&]() { loop(0); });
    cluster.simulator().run_until(sim::seconds(5));
    EXPECT_EQ(done, 20);
    // State landed in the single service instance.
    auto& store = static_cast<KvService&>(cluster.server().service());
    EXPECT_EQ(store.size(), 20u);
}

TEST(StandaloneServer, MultipleClientsShareOneServer) {
    bench::StandaloneCluster::Params params;
    params.base.seed = 602;
    params.service = []() { return std::make_unique<EchoService>(); };
    bench::StandaloneCluster cluster(params);

    int done = 0;
    std::vector<troxy_core::LegacyClient*> clients;
    for (int i = 0; i < 5; ++i) clients.push_back(&cluster.add_client());
    for (auto* client : clients) {
        client->start([&, client]() {
            client->send(EchoService::make_write(1, 64),
                         [&](Bytes) { ++done; });
        });
    }
    cluster.simulator().run_until(sim::seconds(5));
    EXPECT_EQ(done, 5);
}

TEST(StandaloneServer, ReconnectAfterGarbageRecord) {
    // A tampered record kills nothing server-side; the client's channel
    // is per-connection state, so other clients are unaffected.
    bench::StandaloneCluster::Params params;
    params.base.seed = 603;
    params.service = []() { return std::make_unique<EchoService>(); };
    bench::StandaloneCluster cluster(params);
    auto& client = cluster.add_client();

    bool done = false;
    client.start([&]() {
        // Raw garbage straight onto the wire first.
        cluster.fabric().send(
            1000, 1,
            net::wrap(net::Channel::Client,
                      net::frame_client(net::ClientFrame::Record,
                                        to_bytes("garbage"))));
        client.send(EchoService::make_write(1, 64),
                    [&](Bytes) { done = true; });
    });
    cluster.simulator().run_until(sim::seconds(5));
    EXPECT_TRUE(done);
}

TEST(Prophecy, SketchCapacityEvictionStaysCorrect) {
    bench::ProphecyCluster::Params params;
    params.base.seed = 604;
    params.service = []() { return std::make_unique<http::PageService>(16); };
    params.classifier = http::PageService::classifier();
    params.middlebox.sketch_capacity = 4;  // far below the page count
    bench::ProphecyCluster cluster(params);
    auto& client = cluster.add_client();

    int correct = 0;
    std::function<void(int)> loop;
    loop = [&](int step) {
        if (step == 32) return;
        const int page = step % 16;
        client.send(http::PageService::make_get(page),
                    [&, page, step](Bytes response) {
                        auto parsed = http::parse_response(response);
                        if (parsed && to_string(parsed->body) ==
                                          http::PageService::initial_content(
                                              page)) {
                            ++correct;
                        }
                        loop(step + 1);
                    });
    };
    client.start([&]() { loop(0); });
    cluster.simulator().run_until(sim::seconds(30));
    EXPECT_EQ(correct, 32);
    // Eviction forced plenty of sketch misses.
    EXPECT_GE(cluster.middlebox().stats().sketch_misses, 16u);
}

TEST(Prophecy, MixedWorkloadKeepsPbftConsistent) {
    bench::ProphecyCluster::Params params;
    params.base.seed = 605;
    params.service = []() { return std::make_unique<http::PageService>(8); };
    params.classifier = http::PageService::classifier();
    bench::ProphecyCluster cluster(params);
    auto& client = cluster.add_client();

    int done = 0;
    std::function<void(int)> loop;
    loop = [&](int step) {
        if (step == 24) return;
        const int page = step % 8;
        const Bytes request =
            step % 3 == 0
                ? http::PageService::make_post(
                      page, to_bytes("rev" + std::to_string(step)))
                : http::PageService::make_get(page);
        client.send(request, [&, step](Bytes) {
            ++done;
            loop(step + 1);
        });
    };
    client.start([&]() { loop(0); });
    cluster.simulator().run_until(sim::seconds(30));
    ASSERT_EQ(done, 24);

    // All four PBFT replicas hold identical page stores.
    const Bytes reference = cluster.replica(0).service().checkpoint();
    for (int r = 1; r < 4; ++r) {
        EXPECT_EQ(cluster.replica(r).service().checkpoint(), reference)
            << "replica " << r;
    }
}

}  // namespace
}  // namespace troxy
