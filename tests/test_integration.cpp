// End-to-end integration: full clusters processing real workloads.
#include <gtest/gtest.h>

#include "apps/echo_service.hpp"
#include "apps/kv_service.hpp"
#include "bench_support/cluster.hpp"
#include "bench_support/workload.hpp"
#include "http/http.hpp"
#include "http/page_service.hpp"

namespace troxy {
namespace {

using apps::EchoService;
using apps::KvService;

troxy_core::Classifier echo_classifier() {
    return [](ByteView request) {
        return EchoService().classify(request);
    };
}

bench::TroxyCluster::Params troxy_params(std::uint64_t seed = 7) {
    bench::TroxyCluster::Params params;
    params.base.seed = seed;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = echo_classifier();
    return params;
}

// A legacy client can write and read through a Troxy-backed cluster and
// observes linearizable results.
TEST(Integration, TroxyEchoWriteThenRead) {
    bench::TroxyCluster cluster(troxy_params());
    auto& client = cluster.add_client(0);

    Bytes read_reply;
    bool done = false;
    client.start([&]() {
        client.send(EchoService::make_write(5, 256), [&](Bytes ack) {
            ASSERT_FALSE(ack.empty());
            client.send(EchoService::make_read(5, 64, 128),
                        [&](Bytes reply) {
                            read_reply = std::move(reply);
                            done = true;
                        });
        });
    });
    cluster.simulator().run_until(sim::seconds(10));

    ASSERT_TRUE(done);
    // One write happened → version 1.
    EXPECT_EQ(read_reply, EchoService::expected_read_reply(5, 1, 128));
}

// All replicas execute the same request sequence (SMR safety).
TEST(Integration, TroxyReplicasStayInSync) {
    bench::TroxyCluster cluster(troxy_params());
    auto& client = cluster.add_client(1);  // contact a follower

    int remaining = 20;
    client.start([&]() {
        for (int i = 0; i < 20; ++i) {
            client.send(EchoService::make_write(i % 3, 100),
                        [&](Bytes) { --remaining; });
        }
    });
    cluster.simulator().run_until(sim::seconds(10));
    ASSERT_EQ(remaining, 0);

    for (int r = 0; r < cluster.n(); ++r) {
        EXPECT_EQ(cluster.host(r).replica().last_executed(), 20u)
            << "replica " << r;
    }
    // Identical service state everywhere.
    const Bytes snapshot0 = cluster.host(0).replica().service().checkpoint();
    for (int r = 1; r < cluster.n(); ++r) {
        EXPECT_EQ(cluster.host(r).replica().service().checkpoint(),
                  snapshot0);
    }
}

// Multiple clients against different contact replicas, interleaved
// reads/writes; every read must return the value of the latest completed
// write (checked via version monotonicity in the reply).
TEST(Integration, TroxyMultipleClientsMultipleContacts) {
    bench::TroxyCluster cluster(troxy_params(21));
    std::vector<troxy_core::LegacyClient*> clients;
    for (int i = 0; i < 6; ++i) clients.push_back(&cluster.add_client());

    int completed = 0;
    for (auto* client : clients) {
        client->start([&completed, client]() {
            client->send(EchoService::make_write(1, 64), [&completed,
                                                          client](Bytes) {
                client->send(EchoService::make_read(1, 32, 64),
                             [&completed](Bytes reply) {
                                 ASSERT_FALSE(reply.empty());
                                 ++completed;
                             });
            });
        });
    }
    cluster.simulator().run_until(sim::seconds(15));
    EXPECT_EQ(completed, 6);
}

// The fast-read path serves repeated reads without ordering them.
TEST(Integration, TroxyFastReadsHitCache) {
    bench::TroxyCluster cluster(troxy_params(3));
    auto& client = cluster.add_client(0);

    int reads_done = 0;
    std::function<void()> read_next;  // outlives the callbacks below
    read_next = [&]() {
        client.send(EchoService::make_read(9, 32, 256), [&](Bytes reply) {
            EXPECT_EQ(reply, EchoService::expected_read_reply(9, 1, 256));
            if (++reads_done < 10) read_next();
        });
    };
    client.start([&]() {
        // Write once, then read the same key repeatedly. The first read
        // is ordered (cache fill), the rest go through the fast path.
        client.send(EchoService::make_write(9, 64), [&](Bytes) {
            read_next();
        });
    });
    cluster.simulator().run_until(sim::seconds(15));

    ASSERT_EQ(reads_done, 10);
    const auto status = cluster.host(0).troxy().status();
    EXPECT_GT(status.fast_read_hits, 0u) << "fast path never taken";
    // Ordered requests: 1 write + 1 cache-filling read (plus possibly a
    // few early misses); far fewer than the 11 total operations.
    EXPECT_LT(status.ordered_requests, 6u);
}

// A write in between invalidates the cache: the next read must see the
// new version (linearizability of the fast-read cache, §IV-B).
TEST(Integration, TroxyFastReadSeesLatestWrite) {
    bench::TroxyCluster cluster(troxy_params(4));
    auto& client = cluster.add_client(0);

    bool done = false;
    client.start([&]() {
        client.send(EchoService::make_write(2, 64), [&](Bytes) {
            client.send(EchoService::make_read(2, 32, 512), [&](Bytes r1) {
                EXPECT_EQ(r1, EchoService::expected_read_reply(2, 1, 512));
                client.send(EchoService::make_read(2, 32, 512),
                            [&](Bytes r2) {
                    EXPECT_EQ(r2,
                              EchoService::expected_read_reply(2, 1, 512));
                    client.send(EchoService::make_write(2, 64), [&](Bytes) {
                        client.send(
                            EchoService::make_read(2, 32, 512),
                            [&](Bytes r3) {
                                // Must reflect version 2, not the cached 1.
                                EXPECT_EQ(
                                    r3,
                                    EchoService::expected_read_reply(2, 2,
                                                                     512));
                                done = true;
                            });
                    });
                });
            });
        });
    });
    cluster.simulator().run_until(sim::seconds(15));
    EXPECT_TRUE(done);
}

// Baseline cluster with the traditional client-side library.
TEST(Integration, BaselineWriteAndVotedReply) {
    bench::BaselineCluster::Params params;
    params.base.seed = 11;
    params.service = []() { return std::make_unique<EchoService>(); };
    bench::BaselineCluster cluster(params);
    auto& client = cluster.add_client();

    Bytes reply;
    bool done = false;
    client.start([&]() {
        client.invoke(EchoService::make_write(1, 128), false, [&](Bytes r) {
            reply = std::move(r);
            client.invoke(EchoService::make_read(1, 32, 64), true,
                          [&](Bytes r2) {
                              EXPECT_EQ(r2,
                                        EchoService::expected_read_reply(
                                            1, 1, 64));
                              done = true;
                          });
        });
    });
    cluster.simulator().run_until(sim::seconds(10));
    EXPECT_TRUE(done);
    EXPECT_FALSE(reply.empty());
}

// Baseline with the PBFT-like read optimization: conflict-free reads
// complete without ordering.
TEST(Integration, BaselineOptimisticReads) {
    bench::BaselineCluster::Params params;
    params.base.seed = 12;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.optimistic_reads = true;
    bench::BaselineCluster cluster(params);
    auto& client = cluster.add_client();

    int reads = 0;
    std::function<void()> next;
    next = [&]() {
        client.invoke(EchoService::make_read(4, 32, 128), true,
                      [&](Bytes reply) {
                          EXPECT_EQ(reply, EchoService::expected_read_reply(
                                               4, 1, 128));
                          if (++reads < 5) next();
                      });
    };
    client.start([&]() {
        client.invoke(EchoService::make_write(4, 64), false,
                      [&](Bytes) { next(); });
    });
    cluster.simulator().run_until(sim::seconds(10));
    EXPECT_EQ(reads, 5);
    EXPECT_EQ(client.read_conflicts(), 0u);
    EXPECT_EQ(client.optimistic_attempts(), 5u);
    // The optimistic reads must not have been ordered.
    EXPECT_EQ(cluster.host(0).replica().last_executed(), 1u);
}

// Prophecy cluster end to end over PBFT.
TEST(Integration, ProphecyServesHttp) {
    bench::ProphecyCluster::Params params;
    params.base.seed = 13;
    params.service = []() { return std::make_unique<http::PageService>(8); };
    params.classifier = http::PageService::classifier();
    bench::ProphecyCluster cluster(params);
    auto& client = cluster.add_client();

    int done = 0;
    client.start([&]() {
        client.send(http::PageService::make_get(3), [&](Bytes response) {
            auto parsed = http::parse_response(response);
            ASSERT_TRUE(parsed.has_value());
            EXPECT_EQ(parsed->status, 200);
            EXPECT_EQ(to_string(parsed->body),
                      http::PageService::initial_content(3));
            ++done;
            // Second GET of the same page exercises the sketch fast path.
            client.send(http::PageService::make_get(3), [&](Bytes r2) {
                auto p2 = http::parse_response(r2);
                ASSERT_TRUE(p2.has_value());
                EXPECT_EQ(p2->status, 200);
                ++done;
            });
        });
    });
    cluster.simulator().run_until(sim::seconds(15));
    EXPECT_EQ(done, 2);
    EXPECT_GE(cluster.middlebox().stats().fast_hits +
                  cluster.middlebox().stats().ordered,
              2u);
}

// Standalone server floor.
TEST(Integration, StandaloneHttpServer) {
    bench::StandaloneCluster::Params params;
    params.base.seed = 14;
    params.service = []() { return std::make_unique<http::PageService>(4); };
    bench::StandaloneCluster cluster(params);
    auto& client = cluster.add_client();

    bool done = false;
    client.start([&]() {
        client.send(http::PageService::make_post(1, to_bytes("<p>new</p>")),
                    [&](Bytes response) {
                        auto parsed = http::parse_response(response);
                        ASSERT_TRUE(parsed.has_value());
                        client.send(http::PageService::make_get(1),
                                    [&](Bytes r2) {
                                        auto p2 = http::parse_response(r2);
                                        ASSERT_TRUE(p2.has_value());
                                        EXPECT_EQ(to_string(p2->body),
                                                  "<p>new</p>");
                                        done = true;
                                    });
                    });
    });
    cluster.simulator().run_until(sim::seconds(5));
    EXPECT_TRUE(done);
}

// KV service through Troxy: full application-level round trip.
TEST(Integration, TroxyKvStore) {
    bench::TroxyCluster::Params params;
    params.base.seed = 15;
    params.service = []() { return std::make_unique<KvService>(); };
    params.classifier = [](ByteView request) {
        return KvService().classify(request);
    };
    bench::TroxyCluster cluster(std::move(params));
    auto& client = cluster.add_client();

    std::string got;
    bool done = false;
    client.start([&]() {
        client.send(KvService::make_put("user:7", "alice"), [&](Bytes) {
            client.send(KvService::make_get("user:7"), [&](Bytes value) {
                got = to_string(value);
                done = true;
            });
        });
    });
    cluster.simulator().run_until(sim::seconds(10));
    ASSERT_TRUE(done);
    EXPECT_EQ(got, "alice");
}

// Sustained closed-loop load through the full Troxy stack — unlike the
// benchmarks this runs the *real* cryptography end to end.
TEST(Integration, TroxySustainedLoad) {
    bench::TroxyCluster cluster(troxy_params(16));
    bench::Recorder recorder(sim::milliseconds(200), sim::milliseconds(800));
    Rng rng(99);
    bench::Workload workload(
        cluster.simulator(), recorder,
        [](Rng& r) {
            bench::GeneratedRequest req;
            const bool read = r.next_below(100) < 80;
            req.is_read = read;
            req.payload = read ? EchoService::make_read(r.next_below(8), 64,
                                                        256)
                               : EchoService::make_write(r.next_below(8), 64);
            return req;
        },
        5);

    std::vector<troxy_core::LegacyClient*> clients;
    for (int i = 0; i < 4; ++i) clients.push_back(&cluster.add_client());
    for (auto* client : clients) workload.drive_legacy(*client, 4);

    cluster.simulator().run_until(recorder.window_end() + sim::seconds(3));
    EXPECT_GT(recorder.completed(), 500u);
    EXPECT_GT(recorder.throughput_per_sec(), 100.0);
}

}  // namespace
}  // namespace troxy
