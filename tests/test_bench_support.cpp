// Tests for the measurement harness itself: recorders, workload drivers,
// cluster builders — the instruments must be trustworthy before any
// experiment built on them is.
#include <gtest/gtest.h>

#include "apps/echo_service.hpp"
#include "bench_support/cluster.hpp"
#include "bench_support/experiments.hpp"
#include "bench_support/stats.hpp"
#include "bench_support/workload.hpp"

namespace troxy::bench {
namespace {

using apps::EchoService;

TEST(Recorder, CountsOnlyInsideWindow) {
    Recorder recorder(sim::milliseconds(100), sim::milliseconds(200));
    recorder.record(sim::milliseconds(50), sim::milliseconds(1));   // early
    recorder.record(sim::milliseconds(150), sim::milliseconds(2));  // in
    recorder.record(sim::milliseconds(250), sim::milliseconds(3));  // in
    recorder.record(sim::milliseconds(300), sim::milliseconds(4));  // late
    EXPECT_EQ(recorder.completed(), 2u);
    EXPECT_DOUBLE_EQ(recorder.throughput_per_sec(), 2.0 / 0.2);
    EXPECT_DOUBLE_EQ(recorder.mean_latency_ms(), 2.5);
}

TEST(Recorder, Percentiles) {
    Recorder recorder(0, sim::seconds(1));
    for (int i = 1; i <= 100; ++i) {
        recorder.record(sim::milliseconds(10),
                        sim::milliseconds(static_cast<unsigned>(i)));
    }
    EXPECT_NEAR(recorder.percentile_latency_ms(50), 50.0, 1.5);
    EXPECT_NEAR(recorder.percentile_latency_ms(99), 99.0, 1.5);
    EXPECT_NEAR(recorder.percentile_latency_ms(0), 1.0, 0.5);
}

TEST(Recorder, EmptyIsZeroNotNan) {
    Recorder recorder(0, sim::seconds(1));
    EXPECT_EQ(recorder.completed(), 0u);
    EXPECT_DOUBLE_EQ(recorder.mean_latency_ms(), 0.0);
    EXPECT_DOUBLE_EQ(recorder.percentile_latency_ms(99), 0.0);
}

TEST(Workload, ClosedLoopMaintainsPipeline) {
    TroxyCluster::Params params;
    params.base.seed = 5;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    TroxyCluster cluster(std::move(params));

    Recorder recorder(sim::milliseconds(100), sim::milliseconds(500));
    Workload workload(
        cluster.simulator(), recorder,
        [](Rng& rng) {
            GeneratedRequest request;
            request.is_read = false;
            request.payload =
                EchoService::make_write(rng.next_below(4), 64);
            return request;
        },
        5);
    workload.drive_legacy(cluster.add_client(), 3);
    cluster.simulator().run_until(recorder.window_end() + sim::seconds(2));

    // A 3-deep closed loop completed far more than 3 requests.
    EXPECT_GT(recorder.completed(), 50u);
    EXPECT_GE(workload.issued(), recorder.completed());
}

TEST(Workload, OpenLoopApproximatesRate) {
    StandaloneCluster::Params params;
    params.base.seed = 6;
    params.service = []() { return std::make_unique<EchoService>(); };
    StandaloneCluster cluster(params);

    Recorder recorder(sim::milliseconds(200), sim::seconds(2));
    Workload workload(
        cluster.simulator(), recorder,
        [](Rng&) {
            GeneratedRequest request;
            request.is_read = true;
            request.payload = EchoService::make_read(1, 32, 64);
            return request;
        },
        6);
    workload.drive_legacy_open(cluster.add_client(), 200.0);
    cluster.simulator().run_until(recorder.window_end() + sim::seconds(1));
    EXPECT_NEAR(recorder.throughput_per_sec(), 200.0, 40.0);
}

TEST(Clusters, TroxyBuildsForDifferentF) {
    for (const int f : {1, 2}) {
        TroxyCluster::Params params;
        params.base.seed = 7;
        params.base.f = f;
        params.service = []() { return std::make_unique<EchoService>(); };
        params.classifier = [](ByteView request) {
            return EchoService().classify(request);
        };
        TroxyCluster cluster(std::move(params));
        EXPECT_EQ(cluster.n(), 2 * f + 1);
    }
}

TEST(Clusters, ProphecyUsesThreeFPlusOne) {
    ProphecyCluster::Params params;
    params.base.seed = 8;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    ProphecyCluster cluster(params);
    EXPECT_EQ(cluster.config().n(), 4);
}

TEST(Experiments, MicroRunProducesConsistentCounters) {
    MicroParams params;
    params.read_workload = true;
    params.reply_size = 128;
    params.clients = 4;
    params.pipeline = 2;
    params.warmup = sim::milliseconds(100);
    params.window = sim::milliseconds(400);

    const MicroResult result = run_micro(SystemKind::ETroxy, params);
    EXPECT_GT(result.row.throughput, 0.0);
    EXPECT_GT(result.fast_read_hits + result.ordered_requests, 0u);
    EXPECT_GE(result.conflict_rate(), 0.0);
    EXPECT_LE(result.conflict_rate(), 1.0);
}

TEST(Experiments, BaselineAndTroxyBothComplete) {
    MicroParams params;
    params.request_size = 256;
    params.clients = 4;
    params.pipeline = 2;
    params.warmup = sim::milliseconds(100);
    params.window = sim::milliseconds(400);

    for (const SystemKind kind :
         {SystemKind::Baseline, SystemKind::CTroxy, SystemKind::ETroxy}) {
        const MicroResult result = run_micro(kind, params);
        EXPECT_GT(result.row.throughput, 100.0) << system_name(kind);
        EXPECT_GT(result.row.mean_ms, 0.0) << system_name(kind);
    }
}

TEST(Experiments, HttpRunsForEverySystem) {
    HttpParams params;
    params.clients = 4;
    params.total_rate_per_sec = 40;
    params.warmup = sim::milliseconds(200);
    params.window = sim::seconds(1);

    for (const HttpSystem system :
         {HttpSystem::Standalone, HttpSystem::Baseline, HttpSystem::Prophecy,
          HttpSystem::Troxy}) {
        const Row row = run_http(system, params);
        EXPECT_GT(row.throughput, 10.0) << http_system_name(system);
        EXPECT_GT(row.mean_ms, 0.0) << http_system_name(system);
    }
}

}  // namespace
}  // namespace troxy::bench
