// Tests for the measurement harness itself: recorders, workload drivers,
// cluster builders — the instruments must be trustworthy before any
// experiment built on them is.
#include <gtest/gtest.h>

#include "apps/echo_service.hpp"
#include "bench_support/cluster.hpp"
#include "bench_support/experiments.hpp"
#include "bench_support/stats.hpp"
#include "bench_support/workload.hpp"

namespace troxy::bench {
namespace {

using apps::EchoService;

TEST(Recorder, CountsOnlyInsideWindow) {
    Recorder recorder(sim::milliseconds(100), sim::milliseconds(200));
    recorder.record(sim::milliseconds(50), sim::milliseconds(1));   // early
    recorder.record(sim::milliseconds(150), sim::milliseconds(2));  // in
    recorder.record(sim::milliseconds(250), sim::milliseconds(3));  // in
    recorder.record(sim::milliseconds(300), sim::milliseconds(4));  // late
    EXPECT_EQ(recorder.completed(), 2u);
    EXPECT_DOUBLE_EQ(recorder.throughput_per_sec(), 2.0 / 0.2);
    EXPECT_DOUBLE_EQ(recorder.mean_latency_ms(), 2.5);
}

TEST(Recorder, Percentiles) {
    Recorder recorder(0, sim::seconds(1));
    for (int i = 1; i <= 100; ++i) {
        recorder.record(sim::milliseconds(10),
                        sim::milliseconds(static_cast<unsigned>(i)));
    }
    EXPECT_NEAR(recorder.percentile_latency_ms(50), 50.0, 1.5);
    EXPECT_NEAR(recorder.percentile_latency_ms(99), 99.0, 1.5);
    EXPECT_NEAR(recorder.percentile_latency_ms(0), 1.0, 0.5);
}

TEST(Recorder, EmptyIsZeroNotNan) {
    Recorder recorder(0, sim::seconds(1));
    EXPECT_EQ(recorder.completed(), 0u);
    EXPECT_DOUBLE_EQ(recorder.mean_latency_ms(), 0.0);
    EXPECT_DOUBLE_EQ(recorder.percentile_latency_ms(99), 0.0);
}

TEST(Workload, ClosedLoopMaintainsPipeline) {
    TroxyCluster::Params params;
    params.base.seed = 5;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    TroxyCluster cluster(std::move(params));

    Recorder recorder(sim::milliseconds(100), sim::milliseconds(500));
    Workload workload(
        cluster.simulator(), recorder,
        [](Rng& rng) {
            GeneratedRequest request;
            request.is_read = false;
            request.payload =
                EchoService::make_write(rng.next_below(4), 64);
            return request;
        },
        5);
    workload.drive_legacy(cluster.add_client(), 3);
    cluster.simulator().run_until(recorder.window_end() + sim::seconds(2));

    // A 3-deep closed loop completed far more than 3 requests.
    EXPECT_GT(recorder.completed(), 50u);
    EXPECT_GE(workload.issued(), recorder.completed());
}

TEST(Workload, OpenLoopApproximatesRate) {
    StandaloneCluster::Params params;
    params.base.seed = 6;
    params.service = []() { return std::make_unique<EchoService>(); };
    StandaloneCluster cluster(params);

    Recorder recorder(sim::milliseconds(200), sim::seconds(2));
    Workload workload(
        cluster.simulator(), recorder,
        [](Rng&) {
            GeneratedRequest request;
            request.is_read = true;
            request.payload = EchoService::make_read(1, 32, 64);
            return request;
        },
        6);
    workload.drive_legacy_open(cluster.add_client(), 200.0);
    cluster.simulator().run_until(recorder.window_end() + sim::seconds(1));
    EXPECT_NEAR(recorder.throughput_per_sec(), 200.0, 40.0);
}

TEST(Clusters, TroxyBuildsForDifferentF) {
    for (const int f : {1, 2}) {
        TroxyCluster::Params params;
        params.base.seed = 7;
        params.base.f = f;
        params.service = []() { return std::make_unique<EchoService>(); };
        params.classifier = [](ByteView request) {
            return EchoService().classify(request);
        };
        TroxyCluster cluster(std::move(params));
        EXPECT_EQ(cluster.n(), 2 * f + 1);
    }
}

TEST(Clusters, ProphecyUsesThreeFPlusOne) {
    ProphecyCluster::Params params;
    params.base.seed = 8;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    ProphecyCluster cluster(params);
    EXPECT_EQ(cluster.config().n(), 4);
}

TEST(Experiments, MicroRunProducesConsistentCounters) {
    MicroParams params;
    params.read_workload = true;
    params.reply_size = 128;
    params.clients = 4;
    params.pipeline = 2;
    params.warmup = sim::milliseconds(100);
    params.window = sim::milliseconds(400);

    const MicroResult result = run_micro(SystemKind::ETroxy, params);
    EXPECT_GT(result.row.throughput, 0.0);
    EXPECT_GT(result.fast_read_hits + result.ordered_requests, 0u);
    EXPECT_GE(result.conflict_rate(), 0.0);
    EXPECT_LE(result.conflict_rate(), 1.0);
}

TEST(Experiments, BaselineAndTroxyBothComplete) {
    MicroParams params;
    params.request_size = 256;
    params.clients = 4;
    params.pipeline = 2;
    params.warmup = sim::milliseconds(100);
    params.window = sim::milliseconds(400);

    for (const SystemKind kind :
         {SystemKind::Baseline, SystemKind::CTroxy, SystemKind::ETroxy}) {
        const MicroResult result = run_micro(kind, params);
        EXPECT_GT(result.row.throughput, 100.0) << system_name(kind);
        EXPECT_GT(result.row.mean_ms, 0.0) << system_name(kind);
    }
}

TEST(Experiments, HttpRunsForEverySystem) {
    HttpParams params;
    params.clients = 4;
    params.total_rate_per_sec = 40;
    params.warmup = sim::milliseconds(200);
    params.window = sim::seconds(1);

    for (const HttpSystem system :
         {HttpSystem::Standalone, HttpSystem::Baseline, HttpSystem::Prophecy,
          HttpSystem::Troxy}) {
        const Row row = run_http(system, params);
        EXPECT_GT(row.throughput, 10.0) << http_system_name(system);
        EXPECT_GT(row.mean_ms, 0.0) << http_system_name(system);
    }
}


// ---------------------------------------------------- open-loop generators

// Chi-squared goodness of fit: the sampler\'s empirical counts must match
// its own probability() across the whole rank space. 95th-percentile
// critical values for the chi-squared distribution sit near
// df + 2*sqrt(2*df); a comfortable margin above that still catches a
// broken normalizer or a biased branch (each of which shifts the
// statistic by orders of magnitude).
TEST(Zipfian, SamplesMatchDistributionChiSquared) {
    for (const double s : {0.0, 0.5, 0.99}) {
        const std::uint64_t n = 64;
        const std::uint64_t draws = 200000;
        ZipfianSampler sampler(n, s);
        std::vector<std::uint64_t> counts(n, 0);
        Rng rng(1234);
        for (std::uint64_t i = 0; i < draws; ++i) {
            const std::uint64_t rank = sampler.sample(rng);
            ASSERT_LT(rank, n);
            ++counts[rank];
        }
        double chi2 = 0.0;
        for (std::uint64_t k = 0; k < n; ++k) {
            const double expected =
                sampler.probability(k) * static_cast<double>(draws);
            ASSERT_GT(expected, 5.0) << "bin " << k << " too thin for chi2";
            const double d = static_cast<double>(counts[k]) - expected;
            chi2 += d * d / expected;
        }
        EXPECT_LT(chi2, 120.0) << "skew " << s << " (df=63)";
        if (s > 0.0) {
            // Skew sanity: rank 0 must dominate rank n-1 decisively.
            EXPECT_GT(counts[0], counts[n - 1] * 2);
        }
    }
}

TEST(Zipfian, ProbabilitiesSumToOne) {
    ZipfianSampler sampler(1000, 0.99);
    double total = 0.0;
    for (std::uint64_t k = 0; k < 1000; ++k) {
        total += sampler.probability(k);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(OpenLoopSuite, AggregateRateIsAccurate) {
    TroxyCluster::Params params;
    params.base.seed = 11;
    params.ctroxy = true;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    TroxyCluster cluster(params);

    Recorder recorder(sim::milliseconds(200), sim::seconds(2));
    OpenLoopOptions options;
    options.rate_per_sec = 2000.0;
    options.virtual_clients = 100000;
    options.keys = 1024;
    options.zipf_s = 0.99;
    options.read_fraction = 0.5;
    OpenLoopSuite suite(
        cluster.simulator(), recorder, options,
        [](Rng&, const OpenLoopArrival& arrival) {
            return arrival.is_read
                       ? EchoService::make_read(arrival.key, 32, 64)
                       : EchoService::make_write(arrival.key, 64);
        },
        11);
    for (int i = 0; i < 8; ++i) suite.add_connection(cluster.add_client());
    suite.start();
    cluster.simulator().run_until(recorder.window_end() +
                                  sim::milliseconds(500));

    // Open loop: the ACHIEVED arrival rate must track the configured rate
    // within 2% regardless of service latency (that is what open loop
    // means) — measured over the full arrival span to make the Poisson
    // noise term negligible.
    ASSERT_GT(suite.issued(), 1000u);
    const double span_s =
        static_cast<double>(suite.last_arrival() - suite.first_arrival()) /
        1e9;
    const double achieved =
        static_cast<double>(suite.issued() - 1) / span_s;
    EXPECT_NEAR(achieved, options.rate_per_sec,
                options.rate_per_sec * 0.02);
    EXPECT_GT(suite.completed(), 0u);
}

TEST(OpenLoopSuite, ChurnReconnectsSessions) {
    TroxyCluster::Params params;
    params.base.seed = 12;
    params.ctroxy = true;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    TroxyCluster cluster(params);

    Recorder recorder(sim::milliseconds(100), sim::seconds(1));
    OpenLoopOptions options;
    options.rate_per_sec = 500.0;
    options.virtual_clients = 1000;
    options.keys = 16;
    options.churn_per_sec = 50.0;
    OpenLoopSuite suite(
        cluster.simulator(), recorder, options,
        [](Rng&, const OpenLoopArrival& arrival) {
            return EchoService::make_read(arrival.key, 32, 64);
        },
        12);
    std::vector<troxy_core::LegacyClient*> conns;
    for (int i = 0; i < 4; ++i) conns.push_back(&cluster.add_client());
    for (auto* conn : conns) suite.add_connection(*conn);
    suite.start();
    cluster.simulator().run_until(recorder.window_end() +
                                  sim::milliseconds(500));

    // Churn tears down and re-handshakes sessions while traffic flows:
    // sessions() counts completed handshakes, so reconnects show up as
    // extra handshakes beyond the initial connect.
    EXPECT_GT(suite.churned_sessions(), 20u);
    std::uint64_t handshakes = 0;
    for (auto* conn : conns) handshakes += conn->sessions();
    EXPECT_GT(handshakes, static_cast<std::uint64_t>(conns.size()));
    EXPECT_GT(suite.completed(), 100u);
}

}  // namespace
}  // namespace troxy::bench
