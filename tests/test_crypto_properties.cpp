// Randomized property tests over the cryptographic primitives and the
// serialization layer: round-trip identities, tamper detection at every
// byte position, and cross-primitive consistency — parameterized over
// sizes and seeds.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "crypto/aead.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/x25519.hpp"

namespace troxy::crypto {
namespace {

Bytes random_bytes(Rng& rng, std::size_t size) {
    Bytes out(size);
    for (auto& byte : out) byte = static_cast<std::uint8_t>(rng.next());
    return out;
}

class SizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SizeSweep, AeadRoundTripsAtEverySize) {
    Rng rng(GetParam() * 31 + 7);
    ChaChaKey key{};
    for (auto& byte : key) byte = static_cast<std::uint8_t>(rng.next());
    ChaChaNonce nonce{};
    nonce[0] = static_cast<std::uint8_t>(GetParam());

    const Bytes aad = random_bytes(rng, GetParam() % 37);
    const Bytes plaintext = random_bytes(rng, GetParam());
    const Bytes sealed = aead_seal(key, nonce, aad, plaintext);
    EXPECT_EQ(sealed.size(), plaintext.size() + kAeadTagSize);
    const auto opened = aead_open(key, nonce, aad, sealed);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(*opened, plaintext);
}

TEST_P(SizeSweep, ChaChaXorIsAnInvolution) {
    Rng rng(GetParam() * 17 + 3);
    ChaChaKey key{};
    for (auto& byte : key) byte = static_cast<std::uint8_t>(rng.next());
    ChaChaNonce nonce{};
    const Bytes data = random_bytes(rng, GetParam());
    EXPECT_EQ(chacha20_xor(key, nonce, 5,
                           chacha20_xor(key, nonce, 5, data)),
              data);
}

TEST_P(SizeSweep, HmacAndShaAreDeterministicAndSensitive) {
    Rng rng(GetParam() * 13 + 1);
    const Bytes key = random_bytes(rng, 32);
    Bytes data = random_bytes(rng, GetParam() + 1);

    const auto tag = hmac_sha256(key, data);
    EXPECT_EQ(hmac_sha256(key, data), tag);
    const auto digest = sha256(data);
    EXPECT_EQ(sha256(data), digest);

    // Flip one random byte: both outputs must change.
    data[rng.next_below(data.size())] ^= 0x01;
    EXPECT_NE(hmac_sha256(key, data), tag);
    EXPECT_NE(sha256(data), digest);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeSweep,
                         ::testing::Values(0, 1, 15, 16, 17, 63, 64, 65,
                                           255, 1000, 8192));

TEST(AeadTamper, EveryCiphertextBytePositionDetected) {
    ChaChaKey key{};
    key[3] = 7;
    ChaChaNonce nonce{};
    const Bytes sealed =
        aead_seal(key, nonce, to_bytes("aad"), to_bytes("short message"));
    for (std::size_t i = 0; i < sealed.size(); ++i) {
        Bytes tampered = sealed;
        tampered[i] ^= 0x01;
        EXPECT_FALSE(aead_open(key, nonce, to_bytes("aad"), tampered)
                         .has_value())
            << "byte " << i;
    }
}

TEST(X25519Property, RepeatedLaddersAgree) {
    // (a·b)·G computed two ways must agree for random seeds: a·(b·G) ==
    // b·(a·G) — the DH property over many random keypairs.
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        Writer wa, wb;
        wa.u64(seed);
        wa.str("a");
        wb.u64(seed);
        wb.str("b");
        const X25519Keypair a = x25519_keypair_from_seed(wa.data());
        const X25519Keypair b = x25519_keypair_from_seed(wb.data());
        EXPECT_EQ(x25519(a.private_key, b.public_key),
                  x25519(b.private_key, a.public_key))
            << "seed " << seed;
    }
}

TEST(SerializeFuzz, RandomBuffersNeverCrashReader) {
    Rng rng(12345);
    for (int i = 0; i < 2000; ++i) {
        const Bytes junk = random_bytes(rng, rng.next_below(64));
        Reader r(junk);
        try {
            // Interpret as arbitrary structure; every outcome except a
            // crash is acceptable.
            r.u8();
            r.bytes();
            r.u64();
        } catch (const DecodeError&) {
            // expected for most inputs
        }
    }
    SUCCEED();
}

TEST(SerializeProperty, WriterReaderRoundTripRandomized) {
    Rng rng(999);
    for (int i = 0; i < 200; ++i) {
        const std::uint8_t a = static_cast<std::uint8_t>(rng.next());
        const std::uint64_t b = rng.next();
        const Bytes c = random_bytes(rng, rng.next_below(100));
        const std::string s = "str" + std::to_string(rng.next_below(1000));

        Writer w;
        w.u8(a);
        w.u64(b);
        w.bytes(c);
        w.str(s);
        Reader r(w.data());
        EXPECT_EQ(r.u8(), a);
        EXPECT_EQ(r.u64(), b);
        EXPECT_EQ(r.bytes(), c);
        EXPECT_EQ(r.str(), s);
        r.expect_done();
    }
}

TEST(HkdfProperty, DistinctInfoDistinctKeys) {
    const Bytes ikm = to_bytes("input keying material");
    const Bytes a = hkdf({}, ikm, to_bytes("context-a"), 32);
    const Bytes b = hkdf({}, ikm, to_bytes("context-b"), 32);
    EXPECT_NE(a, b);
    // Extendable output is prefix-consistent.
    const Bytes longer = hkdf({}, ikm, to_bytes("context-a"), 64);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), longer.begin()));
}

}  // namespace
}  // namespace troxy::crypto
