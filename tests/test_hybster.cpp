// Hybster protocol unit tests: wire messages, configuration, and a bare
// replica group driven without any client/Troxy machinery.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/echo_service.hpp"
#include "apps/kv_service.hpp"
#include "apps/mail_service.hpp"
#include "hybster/client.hpp"
#include "hybster/config.hpp"
#include "hybster/exec_schedule.hpp"
#include "hybster/keys.hpp"
#include "hybster/messages.hpp"
#include "hybster/replica.hpp"
#include "net/envelope.hpp"

namespace troxy::hybster {
namespace {

// ----------------------------------------------------------------- config

TEST(Config, QuorumAndLeader) {
    Config config;
    config.f = 1;
    config.replicas = {10, 11, 12};
    config.validate();
    EXPECT_EQ(config.n(), 3);
    EXPECT_EQ(config.quorum(), 2);
    EXPECT_EQ(config.leader_of(0), 0u);
    EXPECT_EQ(config.leader_of(1), 1u);
    EXPECT_EQ(config.leader_of(3), 0u);
    EXPECT_EQ(config.node_of(2), 12u);
    EXPECT_EQ(config.replica_of(11), 1);
    EXPECT_EQ(config.replica_of(99), -1);
}

TEST(Config, LargerGroups) {
    Config config;
    config.f = 2;
    config.replicas = {1, 2, 3, 4, 5};
    config.validate();
    EXPECT_EQ(config.quorum(), 3);
}

TEST(Config, BatchSizeWireLimit) {
    // The config ceiling must agree with Batch::decode's wire limit: a
    // leader allowed to cut bigger batches would stall the group.
    Config config;
    config.f = 1;
    config.replicas = {10, 11, 12};
    config.batch_size_max = 1u << 16;  // largest batch followers accept
    config.validate();
}

// --------------------------------------------------------------- messages

TEST(Messages, RequestRoundTrip) {
    Request request;
    request.id = {7, 42};
    request.flags = Request::kFlagRead;
    request.payload = to_bytes("payload");
    request.auth.push_back(enclave::Certificate{});
    request.auth.back().fill(0x11);

    const Bytes wire = encode_message(Message(request));
    const auto decoded = decode_message(wire);
    ASSERT_TRUE(decoded.has_value());
    const auto* out = std::get_if<Request>(&*decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->id, request.id);
    EXPECT_TRUE(out->is_read());
    EXPECT_FALSE(out->is_optimistic());
    EXPECT_EQ(out->payload, request.payload);
    ASSERT_EQ(out->auth.size(), 1u);
    EXPECT_EQ(out->auth[0], request.auth[0]);
}

TEST(Messages, RequestDigestExcludesAuth) {
    Request a;
    a.id = {1, 2};
    a.payload = to_bytes("x");
    Request b = a;
    b.auth.push_back(enclave::Certificate{});
    EXPECT_EQ(a.digest(), b.digest());
}

TEST(Messages, PrepareRoundTrip) {
    Prepare prepare;
    prepare.view = 3;
    prepare.seq = 17;
    prepare.replica = 0;
    prepare.counter_value = 5;
    Request member;
    member.id = {9, 1};
    member.payload = to_bytes("req");
    prepare.batch.requests.push_back(member);
    Request second;
    second.id = {9, 2};
    second.payload = to_bytes("req2");
    prepare.batch.requests.push_back(second);
    prepare.cert.fill(0x22);

    const auto decoded = decode_message(encode_message(Message(prepare)));
    ASSERT_TRUE(decoded.has_value());
    const auto* out = std::get_if<Prepare>(&*decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->view, 3u);
    EXPECT_EQ(out->seq, 17u);
    EXPECT_EQ(out->counter_value, 5u);
    ASSERT_EQ(out->batch.size(), 2u);
    EXPECT_EQ(out->batch.requests[0].payload, to_bytes("req"));
    EXPECT_EQ(out->batch.requests[1].payload, to_bytes("req2"));
    EXPECT_EQ(out->batch.digest(), prepare.batch.digest());
}

TEST(Messages, BatchDigestRules) {
    // One member: the batch digest is the member's request digest, so a
    // single-request batch is wire- and digest-compatible with the
    // pre-batching protocol.
    Batch single;
    Request r1;
    r1.id = {1, 1};
    r1.payload = to_bytes("a");
    single.requests.push_back(r1);
    EXPECT_EQ(single.digest(), r1.digest());

    // Several members: SHA-256 over the concatenated member digests.
    // (Built fresh — a batch must not be mutated once its digest is
    // memoized.)
    Batch pair;
    Request r2;
    r2.id = {1, 2};
    r2.payload = to_bytes("b");
    pair.requests.push_back(r1);
    pair.requests.push_back(r2);
    Bytes concat_digests;
    for (const auto& r : pair.requests) {
        concat_digests.insert(concat_digests.end(), r.digest().begin(),
                              r.digest().end());
    }
    EXPECT_EQ(pair.digest(), crypto::sha256(concat_digests));
    EXPECT_NE(pair.digest(), single.digest());
}

TEST(Messages, CertifiedViewsBindBatchStructure) {
    // The batch digest alone cannot tell a k-member batch from a single
    // crafted request whose signed bytes equal the concatenated member
    // digests, so the trusted counter must certify the member count next
    // to the digest. Certified views that differ only in batch size must
    // therefore differ as byte strings, for PREPAREs and COMMITs alike.
    Request r1;
    r1.id = {1, 1};
    r1.payload = to_bytes("a");
    Request r2;
    r2.id = {1, 2};
    r2.payload = to_bytes("b");

    Prepare one;
    one.view = 4;
    one.seq = 9;
    one.replica = 0;
    one.batch.requests.push_back(r1);
    Prepare two = one;
    two.batch.requests.push_back(r2);
    const Bytes view_one = one.certified_view();
    const Bytes view_two = two.certified_view();
    EXPECT_NE(view_one, view_two);
    // The count is part of the certified bytes even when digests were
    // (hypothetically) equal: strip the digest suffix and compare.
    const auto prefix = [](const Bytes& b) {
        return Bytes(b.begin(), b.end() - crypto::kSha256DigestSize);
    };
    EXPECT_NE(prefix(view_one), prefix(view_two));

    Commit ca;
    ca.view = 4;
    ca.seq = 9;
    ca.replica = 1;
    ca.batch_size = 1;
    ca.batch_digest = crypto::sha256(to_bytes("same"));
    Commit cb = ca;
    cb.batch_size = 2;
    EXPECT_NE(ca.certified_view(), cb.certified_view());
}

TEST(Messages, CommitReplyCheckpointRoundTrip) {
    Commit commit;
    commit.view = 1;
    commit.seq = 2;
    commit.replica = 2;
    commit.counter_value = 2;
    commit.batch_size = 3;
    commit.batch_digest = crypto::sha256(to_bytes("r"));
    auto c = decode_message(encode_message(Message(commit)));
    ASSERT_TRUE(c && std::holds_alternative<Commit>(*c));
    EXPECT_EQ(std::get<Commit>(*c).batch_size, 3u);
    EXPECT_EQ(std::get<Commit>(*c).batch_digest, commit.batch_digest);

    Reply reply;
    reply.kind = Reply::Kind::Optimistic;
    reply.request_id = {5, 6};
    reply.result = to_bytes("result");
    reply.replica = 1;
    auto r = decode_message(encode_message(Message(reply)));
    ASSERT_TRUE(r && std::holds_alternative<Reply>(*r));
    EXPECT_EQ(std::get<Reply>(*r).kind, Reply::Kind::Optimistic);
    EXPECT_EQ(std::get<Reply>(*r).result, to_bytes("result"));

    CheckpointMsg cp;
    cp.seq = 128;
    cp.replica = 0;
    cp.state_digest = crypto::sha256(to_bytes("state"));
    auto k = decode_message(encode_message(Message(cp)));
    ASSERT_TRUE(k && std::holds_alternative<CheckpointMsg>(*k));
    EXPECT_EQ(std::get<CheckpointMsg>(*k).seq, 128u);
}

TEST(Messages, ViewChangeNewViewRoundTrip) {
    ViewChange vc;
    vc.new_view = 2;
    vc.replica = 1;
    vc.last_stable = 64;
    Prepare prepared;
    prepared.view = 1;
    prepared.seq = 65;
    Request pending;
    pending.payload = to_bytes("pending");
    prepared.batch.requests.push_back(std::move(pending));
    vc.prepared.push_back(prepared);

    auto v = decode_message(encode_message(Message(vc)));
    ASSERT_TRUE(v && std::holds_alternative<ViewChange>(*v));
    EXPECT_EQ(std::get<ViewChange>(*v).prepared.size(), 1u);

    NewView nv;
    nv.view = 2;
    nv.replica = 2;
    nv.start_seq = 65;
    nv.proofs.push_back(vc);
    nv.reproposed.push_back(prepared);
    auto n = decode_message(encode_message(Message(nv)));
    ASSERT_TRUE(n && std::holds_alternative<NewView>(*n));
    EXPECT_EQ(std::get<NewView>(*n).proofs.size(), 1u);
    EXPECT_EQ(std::get<NewView>(*n).reproposed.size(), 1u);
}

TEST(Messages, MalformedInputsRejected) {
    EXPECT_FALSE(decode_message(Bytes{}).has_value());
    EXPECT_FALSE(decode_message(Bytes{99}).has_value());
    Bytes truncated = encode_message(Message(Request{}));
    truncated.resize(truncated.size() - 3);
    EXPECT_FALSE(decode_message(truncated).has_value());
    Bytes trailing = encode_message(Message(Request{}));
    trailing.push_back(0);
    EXPECT_FALSE(decode_message(trailing).has_value());
}

TEST(Keys, PairwiseKeysDistinct) {
    const Bytes master = to_bytes("master");
    EXPECT_NE(client_replica_key(master, 1, 0),
              client_replica_key(master, 1, 1));
    EXPECT_NE(client_replica_key(master, 1, 0),
              client_replica_key(master, 2, 0));
    EXPECT_EQ(client_replica_key(master, 1, 0),
              client_replica_key(master, 1, 0));
}

// ---------------------------------------------------- bare replica harness

struct BareGroup {
    sim::Simulator sim{123};
    sim::Network network{sim};
    net::Fabric fabric{sim, network};
    Config config;
    std::vector<std::unique_ptr<sim::Node>> nodes;
    std::vector<std::unique_ptr<Replica>> replicas;
    std::vector<Reply> delivered;  // replies that reached "the client"
    sim::CostProfile profile = sim::CostProfile::java();

    explicit BareGroup(int f = 1, std::size_t batch_size_max = 1,
                       sim::Duration batch_delay = 0,
                       std::size_t execution_lanes = 1,
                       ServiceFactory service = {}) {
        if (!service) {
            service = []() { return std::make_unique<apps::EchoService>(); };
        }
        config.f = f;
        config.checkpoint_interval = 8;
        config.view_change_timeout = sim::milliseconds(200);
        config.batch_size_max = batch_size_max;
        config.batch_delay = batch_delay;
        config.execution_lanes = execution_lanes;
        const int n = 2 * f + 1;
        for (int i = 0; i < n; ++i) {
            config.replicas.push_back(static_cast<sim::NodeId>(i + 1));
        }
        const Bytes group_key = to_bytes("test-group-key");
        for (int i = 0; i < n; ++i) {
            nodes.push_back(std::make_unique<sim::Node>(
                sim, config.replicas[static_cast<std::size_t>(i)],
                "r" + std::to_string(i), 4));
            auto trinx = std::make_shared<enclave::TrinX>(
                static_cast<std::uint32_t>(i), group_key);

            Replica::Hooks hooks;
            hooks.verify_request = [](enclave::CostedCrypto&,
                                      const Request&) { return true; };
            hooks.deliver_reply = [this](enclave::CostedCrypto&,
                                         net::Outbox&, const Request&,
                                         Reply reply) {
                delivered.push_back(std::move(reply));
            };
            replicas.push_back(std::make_unique<Replica>(
                fabric, *nodes.back(), config,
                static_cast<std::uint32_t>(i), service(), std::move(trinx),
                profile, std::move(hooks)));
            auto* replica = replicas.back().get();
            fabric.attach(config.replicas[static_cast<std::size_t>(i)],
                          [replica](sim::NodeId from, Bytes message) {
                              auto unwrapped = net::unwrap(message);
                              if (!unwrapped) return;
                              replica->on_message(from, unwrapped->second);
                          });
        }
    }

    Request make_request(std::uint64_t number, Bytes payload,
                         std::uint8_t flags = 0) {
        Request request;
        request.id = {500, number};
        request.flags = flags;
        request.payload = std::move(payload);
        return request;
    }

    /// Replies delivered by distinct replicas for a request number.
    int replies_for(std::uint64_t number) {
        std::set<std::uint32_t> replicas_seen;
        for (const Reply& reply : delivered) {
            if (reply.request_id.number == number) {
                replicas_seen.insert(reply.replica);
            }
        }
        return static_cast<int>(replicas_seen.size());
    }
};

TEST(Replica, LeaderOrdersAndAllExecute) {
    BareGroup group;
    group.replicas[0]->submit(
        group.make_request(1, apps::EchoService::make_write(1, 64)));
    group.sim.run_until(sim::seconds(2));

    for (const auto& replica : group.replicas) {
        EXPECT_EQ(replica->last_executed(), 1u);
    }
    EXPECT_EQ(group.replies_for(1), 3);
}

TEST(Replica, FollowerForwardsToLeader) {
    BareGroup group;
    group.replicas[2]->submit(
        group.make_request(1, apps::EchoService::make_write(1, 64)));
    group.sim.run_until(sim::seconds(2));
    EXPECT_EQ(group.replicas[0]->last_executed(), 1u);
    EXPECT_EQ(group.replies_for(1), 3);
}

TEST(Replica, SequentialRequestsExecuteInOrder) {
    BareGroup group;
    for (std::uint64_t i = 1; i <= 10; ++i) {
        group.replicas[0]->submit(
            group.make_request(i, apps::EchoService::make_write(i % 3, 64)));
    }
    group.sim.run_until(sim::seconds(2));
    for (const auto& replica : group.replicas) {
        EXPECT_EQ(replica->last_executed(), 10u);
    }
    // Deterministic execution ⇒ identical state.
    const Bytes snapshot = group.replicas[0]->service().checkpoint();
    EXPECT_EQ(group.replicas[1]->service().checkpoint(), snapshot);
    EXPECT_EQ(group.replicas[2]->service().checkpoint(), snapshot);
}

TEST(Replica, DuplicateRequestGetsReplyRetransmission) {
    BareGroup group;
    const Request request =
        group.make_request(1, apps::EchoService::make_write(1, 64));
    group.replicas[0]->submit(request);
    group.sim.run_until(sim::seconds(1));
    const std::size_t replies_before = group.delivered.size();

    group.replicas[0]->submit(request);  // retransmission
    group.sim.run_until(sim::seconds(2));
    EXPECT_GT(group.delivered.size(), replies_before);
    // But no double execution.
    EXPECT_EQ(group.replicas[0]->last_executed(), 1u);
}

TEST(Replica, CheckpointsTruncateAndStabilize) {
    BareGroup group;  // checkpoint interval 8
    for (std::uint64_t i = 1; i <= 20; ++i) {
        group.replicas[0]->submit(
            group.make_request(i, apps::EchoService::make_write(1, 32)));
    }
    group.sim.run_until(sim::seconds(3));
    for (const auto& replica : group.replicas) {
        EXPECT_EQ(replica->last_executed(), 20u);
        EXPECT_GE(replica->last_stable(), 8u);
    }
}

TEST(Replica, OptimisticReadDoesNotOrder) {
    BareGroup group;
    group.replicas[1]->execute_optimistic_read(group.make_request(
        1, apps::EchoService::make_read(1, 32, 64),
        Request::kFlagRead | Request::kFlagOptimistic));
    group.sim.run_until(sim::seconds(1));
    EXPECT_EQ(group.replicas[1]->last_executed(), 0u);
    ASSERT_EQ(group.delivered.size(), 1u);
    EXPECT_EQ(group.delivered[0].kind, Reply::Kind::Optimistic);
}

TEST(Replica, ViewChangeOnCrashedLeader) {
    BareGroup group;
    // Execute something first so all replicas are warm.
    group.replicas[0]->submit(
        group.make_request(1, apps::EchoService::make_write(1, 32)));
    group.sim.run_until(sim::seconds(1));
    ASSERT_EQ(group.replicas[1]->last_executed(), 1u);

    // Crash the leader, then a follower receives a request and forwards
    // it into the void — the progress timer must fire a view change.
    FaultProfile crash;
    crash.crashed = true;
    group.replicas[0]->set_faults(crash);

    group.replicas[1]->submit(
        group.make_request(2, apps::EchoService::make_write(2, 32)));
    group.sim.run_until(sim::seconds(5));

    EXPECT_GT(group.replicas[1]->view(), 0u);
    EXPECT_EQ(group.replicas[1]->last_executed(), 2u);
    EXPECT_EQ(group.replicas[2]->last_executed(), 2u);
    EXPECT_GE(group.replies_for(2), 2);
}

TEST(Replica, MutedLeaderTriggersViewChange) {
    BareGroup group;
    FaultProfile mute;
    mute.mute_agreement = true;
    group.replicas[0]->set_faults(mute);

    // Follower forwards a request; the muted leader never proposes.
    group.replicas[1]->submit(
        group.make_request(1, apps::EchoService::make_write(1, 32)));
    group.sim.run_until(sim::seconds(5));

    EXPECT_GT(group.replicas[1]->view(), 0u);
    EXPECT_EQ(group.replicas[1]->last_executed(), 1u);
}

// ---------------------------------------------------------------- batching

TEST(Replica, BatchCutAtSizeBoundary) {
    // Batch fills to batch_size_max long before the delay expires: the
    // size boundary cuts it. Four requests end up in ONE log entry.
    BareGroup group(1, /*batch_size_max=*/4,
                    /*batch_delay=*/sim::milliseconds(50));
    for (std::uint64_t i = 1; i <= 4; ++i) {
        group.replicas[0]->submit(
            group.make_request(i, apps::EchoService::make_write(i, 32)));
    }
    // Well before the 50 ms delay boundary the batch must already have
    // executed everywhere — proof the size boundary (not the timer) cut.
    group.sim.run_until(sim::milliseconds(40));
    for (const auto& replica : group.replicas) {
        EXPECT_EQ(replica->last_executed(), 1u);  // one batch = one seq
    }
    for (std::uint64_t i = 1; i <= 4; ++i) {
        EXPECT_EQ(group.replies_for(i), 3) << "request " << i;
    }
}

TEST(Replica, BatchCutAtDelayBoundary) {
    // Batch never fills: the delay timer cuts it. Before the boundary
    // nothing is ordered; after it, all members execute under one seq.
    BareGroup group(1, /*batch_size_max=*/16,
                    /*batch_delay=*/sim::milliseconds(50));
    for (std::uint64_t i = 1; i <= 3; ++i) {
        group.replicas[0]->submit(
            group.make_request(i, apps::EchoService::make_write(i, 32)));
    }
    group.sim.run_until(sim::milliseconds(40));
    EXPECT_EQ(group.replicas[0]->last_executed(), 0u);  // still pending

    group.sim.run_until(sim::milliseconds(500));
    for (const auto& replica : group.replicas) {
        EXPECT_EQ(replica->last_executed(), 1u);
    }
    for (std::uint64_t i = 1; i <= 3; ++i) {
        EXPECT_EQ(group.replies_for(i), 3) << "request " << i;
    }
}

TEST(Replica, CheckpointLandsMidBatch) {
    // Interval 8 with batches of 5: the threshold is crossed by the
    // middle of the second batch, so the checkpoint lands at that batch's
    // sequence number (2) — after the whole batch executed, never inside.
    BareGroup group(1, /*batch_size_max=*/5,
                    /*batch_delay=*/sim::milliseconds(50));
    for (std::uint64_t i = 1; i <= 10; ++i) {
        group.replicas[0]->submit(
            group.make_request(i, apps::EchoService::make_write(1, 32)));
    }
    group.sim.run_until(sim::seconds(3));
    for (const auto& replica : group.replicas) {
        EXPECT_EQ(replica->last_executed(), 2u);  // two batches of five
        EXPECT_EQ(replica->last_stable(), 2u);    // checkpoint at seq 2
    }
    for (std::uint64_t i = 1; i <= 10; ++i) {
        EXPECT_EQ(group.replies_for(i), 3) << "request " << i;
    }
}

TEST(Replica, ViewChangeRescuesPendingBatch) {
    // A request forwarded through a follower sits in the leader's *uncut*
    // batch when the leader dies. The follower's progress timer fires a
    // view change and the new leader re-proposes the forwarded request.
    BareGroup group(1, /*batch_size_max=*/16,
                    /*batch_delay=*/sim::milliseconds(100));
    group.replicas[1]->submit(
        group.make_request(1, apps::EchoService::make_write(1, 32)));
    // Let the forward reach the leader's pending batch, then crash the
    // leader before the 100 ms delay boundary cuts it.
    group.sim.run_until(sim::milliseconds(20));
    ASSERT_EQ(group.replicas[0]->last_executed(), 0u);
    FaultProfile crash;
    crash.crashed = true;
    group.replicas[0]->set_faults(crash);

    group.sim.run_until(sim::seconds(5));
    EXPECT_GT(group.replicas[1]->view(), 0u);
    EXPECT_EQ(group.replicas[1]->last_executed(), 1u);
    EXPECT_EQ(group.replicas[2]->last_executed(), 1u);
    EXPECT_GE(group.replies_for(1), 2);
}

TEST(Replica, BatchedExecutionMatchesUnbatchedState) {
    // The same request sequence produces byte-identical service state
    // whether ordered one-by-one or in batches of four.
    auto run = [](std::size_t batch_size, sim::Duration delay) {
        BareGroup group(1, batch_size, delay);
        for (std::uint64_t i = 1; i <= 10; ++i) {
            group.replicas[0]->submit(group.make_request(
                i, apps::EchoService::make_write(i % 3, 64)));
        }
        group.sim.run_until(sim::seconds(3));
        EXPECT_EQ(group.replies_for(10), 3);
        return group.replicas[0]->service().checkpoint();
    };
    const Bytes unbatched = run(1, 0);
    const Bytes batched = run(4, sim::milliseconds(10));
    EXPECT_EQ(unbatched, batched);
}

TEST(Replica, FiveReplicaGroupToleratesTwoFaults) {
    BareGroup group(2);  // n = 5
    group.replicas[0]->submit(
        group.make_request(1, apps::EchoService::make_write(1, 32)));
    group.sim.run_until(sim::seconds(2));
    EXPECT_EQ(group.replies_for(1), 5);

    FaultProfile crash;
    crash.crashed = true;
    group.replicas[3]->set_faults(crash);
    group.replicas[4]->set_faults(crash);

    group.delivered.clear();
    group.replicas[0]->submit(
        group.make_request(2, apps::EchoService::make_write(1, 32)));
    group.sim.run_until(sim::seconds(4));
    EXPECT_EQ(group.replicas[0]->last_executed(), 2u);
    EXPECT_EQ(group.replies_for(2), 3);  // the three alive replicas
}

// --------------------------------------------------------- execution lanes

/// Service with hand-controllable conflict classes and costs: the first
/// payload byte is the state key, the second the execution cost in ns.
struct StubLaneService final : Service {
    [[nodiscard]] RequestInfo classify(ByteView request) const override {
        RequestInfo info;
        info.state_key = std::string(1, static_cast<char>(request[0]));
        return info;
    }
    Bytes execute(ByteView request) override {
        return Bytes(request.begin(), request.end());
    }
    [[nodiscard]] Bytes checkpoint() const override { return {}; }
    void restore(ByteView) override {}
    [[nodiscard]] sim::Duration execution_cost(
        ByteView request) const override {
        return request.size() > 1 ? request[1] : 0;
    }
};

Request lane_request(char key, std::uint8_t cost, std::uint8_t flags = 0) {
    Request request;
    request.id = {500, static_cast<std::uint64_t>(key) * 256 + cost};
    request.flags = flags;
    request.payload = {static_cast<std::uint8_t>(key), cost};
    return request;
}

TEST(PlanExecution, SameKeyMembersChainInOneClass) {
    StubLaneService service;
    Batch batch;
    batch.requests = {lane_request('a', 10), lane_request('a', 20),
                      lane_request('b', 30)};
    const ExecPlan plan = plan_execution(batch, service, 4);

    EXPECT_EQ(plan.conflict_classes, 2u);
    EXPECT_EQ(plan.class_of, (std::vector<std::size_t>{0, 0, 1}));
    EXPECT_EQ(plan.serial, sim::Duration{60});
    // Chain a (10+20) and chain b (30) run on parallel lanes.
    EXPECT_EQ(plan.makespan, sim::Duration{30});
    EXPECT_EQ(plan.conflict_stalls, 1u);
    EXPECT_EQ(plan.lanes_used, 2u);
}

TEST(PlanExecution, GreedySchedulePacksShortChains) {
    StubLaneService service;
    Batch batch;
    batch.requests = {lane_request('a', 30), lane_request('b', 10),
                      lane_request('c', 10), lane_request('d', 10)};
    const ExecPlan plan = plan_execution(batch, service, 2);
    // Greedy: a→lane0 (30); b,c,d stack on lane1 (30). Perfect packing.
    EXPECT_EQ(plan.serial, sim::Duration{60});
    EXPECT_EQ(plan.makespan, sim::Duration{30});
    EXPECT_EQ(plan.conflict_stalls, 0u);
    EXPECT_EQ(plan.lanes_used, 2u);
}

TEST(PlanExecution, SingleLaneEqualsSerialSum) {
    StubLaneService service;
    Batch batch;
    batch.requests = {lane_request('a', 10), lane_request('b', 20),
                      lane_request('c', 30)};
    const ExecPlan plan = plan_execution(batch, service, 1);
    EXPECT_EQ(plan.makespan, plan.serial);
    EXPECT_EQ(plan.serial, sim::Duration{60});
    EXPECT_EQ(plan.lanes_used, 1u);
}

TEST(PlanExecution, BatchOfOneMatchesItsOwnCost) {
    StubLaneService service;
    Batch batch;
    batch.requests = {lane_request('a', 42)};
    for (const std::size_t lanes : {std::size_t{1}, std::size_t{8}}) {
        const ExecPlan plan = plan_execution(batch, service, lanes);
        EXPECT_EQ(plan.makespan, sim::Duration{42});
        EXPECT_EQ(plan.serial, sim::Duration{42});
        EXPECT_EQ(plan.conflict_classes, 1u);
        EXPECT_EQ(plan.conflict_stalls, 0u);
    }
}

TEST(PlanExecution, NoopsAreSkipped) {
    StubLaneService service;
    Batch batch;
    batch.requests = {lane_request('a', 10),
                      lane_request('z', 99, Request::kFlagNoop),
                      lane_request('b', 20)};
    const ExecPlan plan = plan_execution(batch, service, 4);
    EXPECT_EQ(plan.class_of[1], ExecPlan::kNoClass);
    EXPECT_EQ(plan.serial, sim::Duration{30});
    EXPECT_EQ(plan.makespan, sim::Duration{20});
    EXPECT_EQ(plan.conflict_classes, 2u);
}

TEST(Replica, LaneCountsProduceIdenticalRepliesAndState) {
    // Replies and checkpoints must be byte-identical for any lane count:
    // lanes change modeled time, never results. Exercised over all three
    // bundled services with a key pattern that mixes conflicting and
    // disjoint requests per batch.
    struct ServiceCase {
        const char* name;
        ServiceFactory factory;
        std::function<Bytes(std::uint64_t)> payload;
    };
    const std::vector<ServiceCase> cases = {
        {"echo", []() { return std::make_unique<apps::EchoService>(); },
         [](std::uint64_t i) {
             return apps::EchoService::make_write(i % 3, 48);
         }},
        {"kv", []() { return std::make_unique<apps::KvService>(); },
         [](std::uint64_t i) {
             return apps::KvService::make_put(
                 "k" + std::to_string(i % 5), "v" + std::to_string(i));
         }},
        {"mail", []() { return std::make_unique<apps::MailService>(); },
         [](std::uint64_t i) {
             return apps::MailService::make_append(
                 "box" + std::to_string(i % 4), "msg" + std::to_string(i));
         }},
    };

    for (const ServiceCase& test_case : cases) {
        std::vector<Bytes> checkpoints;
        std::vector<std::vector<std::pair<std::uint64_t, Bytes>>> replies;
        for (const std::size_t lanes :
             {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
            BareGroup group(1, /*batch_size_max=*/8,
                            /*batch_delay=*/sim::milliseconds(5), lanes,
                            test_case.factory);
            for (std::uint64_t i = 1; i <= 24; ++i) {
                group.replicas[0]->submit(
                    group.make_request(i, test_case.payload(i)));
            }
            group.sim.run_until(sim::seconds(3));
            for (const auto& replica : group.replicas) {
                EXPECT_EQ(replica->last_executed(),
                          group.replicas[0]->last_executed())
                    << test_case.name << " lanes=" << lanes;
            }
            std::vector<std::pair<std::uint64_t, Bytes>> run_replies;
            for (const Reply& reply : group.delivered) {
                if (reply.replica == 0) {
                    run_replies.emplace_back(reply.request_id.number,
                                             reply.result);
                }
            }
            std::sort(run_replies.begin(), run_replies.end());
            replies.push_back(std::move(run_replies));
            checkpoints.push_back(group.replicas[0]->service().checkpoint());
        }
        for (std::size_t i = 1; i < checkpoints.size(); ++i) {
            EXPECT_EQ(checkpoints[i], checkpoints[0]) << test_case.name;
            EXPECT_EQ(replies[i], replies[0]) << test_case.name;
        }
    }
}

TEST(Replica, SingleLaneKeepsSerialCostAndStats) {
    // lanes = 1 is the seed flow: no batch is run through the scheduler
    // and the charged CPU time matches a run without the knob at all.
    auto run = [](std::size_t lanes) {
        BareGroup group(1, /*batch_size_max=*/4,
                        /*batch_delay=*/sim::milliseconds(5), lanes,
                        []() { return std::make_unique<apps::KvService>(); });
        for (std::uint64_t i = 1; i <= 12; ++i) {
            group.replicas[0]->submit(group.make_request(
                i, apps::KvService::make_put("k" + std::to_string(i % 3),
                                             "value")));
        }
        group.sim.run_until(sim::seconds(3));
        sim::Duration busy = 0;
        for (const auto& node : group.nodes) busy += node->busy_time();
        return std::pair(busy, group.replicas[0]->exec_stats());
    };
    const auto [default_busy, default_stats] = run(1);
    EXPECT_EQ(default_stats.scheduled_batches, 0u);
    EXPECT_EQ(default_stats.charged_cost, sim::Duration{0});

    // A fully conflicting workload degenerates to one chain: even with
    // lanes, the makespan equals the serial sum, so total CPU matches the
    // serial run to the nanosecond.
    auto run_hot = [](std::size_t lanes) {
        BareGroup group(1, /*batch_size_max=*/4,
                        /*batch_delay=*/sim::milliseconds(5), lanes,
                        []() { return std::make_unique<apps::KvService>(); });
        for (std::uint64_t i = 1; i <= 12; ++i) {
            group.replicas[0]->submit(group.make_request(
                i, apps::KvService::make_put("hot", "value")));
        }
        group.sim.run_until(sim::seconds(3));
        sim::Duration busy = 0;
        for (const auto& node : group.nodes) busy += node->busy_time();
        return std::pair(busy, group.replicas[0]->exec_stats());
    };
    const auto [serial_busy, serial_stats] = run_hot(1);
    const auto [laned_busy, laned_stats] = run_hot(4);
    EXPECT_EQ(laned_busy, serial_busy);
    EXPECT_GT(laned_stats.scheduled_batches, 0u);
    EXPECT_EQ(laned_stats.charged_cost, laned_stats.serial_cost);
    EXPECT_GT(laned_stats.conflict_stalls, 0u);
    (void)serial_stats;
    (void)default_busy;
}

TEST(Replica, ParallelLanesReduceChargedCost) {
    // Disjoint keys at 4 lanes: the charged makespan must sit well below
    // the serial sum, and no member stalls behind another.
    BareGroup group(1, /*batch_size_max=*/8,
                    /*batch_delay=*/sim::milliseconds(5), 4,
                    []() { return std::make_unique<apps::KvService>(); });
    for (std::uint64_t i = 1; i <= 16; ++i) {
        group.replicas[0]->submit(group.make_request(
            i, apps::KvService::make_put("k" + std::to_string(i), "v")));
    }
    group.sim.run_until(sim::seconds(3));
    const auto& stats = group.replicas[0]->exec_stats();
    ASSERT_GT(stats.scheduled_batches, 0u);
    EXPECT_EQ(stats.conflict_stalls, 0u);
    EXPECT_LT(stats.charged_cost, stats.serial_cost);
    // Full batches of disjoint keys occupy every lane.
    EXPECT_GE(stats.lanes_used_sum, stats.scheduled_batches);
}

TEST(Replica, PrebatchedSubmitFormsOneBatch) {
    // A pre-formed burst (the Troxy's conflicted fast-read fallbacks)
    // enters ordering as ONE batch even though batch_delay is zero.
    BareGroup group(1, /*batch_size_max=*/8, /*batch_delay=*/0);
    std::vector<Request> burst;
    for (std::uint64_t i = 1; i <= 5; ++i) {
        burst.push_back(
            group.make_request(i, apps::EchoService::make_write(i, 32)));
    }
    group.replicas[0]->submit_prebatched(std::move(burst));
    group.sim.run_until(sim::seconds(2));

    for (const auto& replica : group.replicas) {
        EXPECT_EQ(replica->last_executed(), 1u);  // one batch = one seq
    }
    for (std::uint64_t i = 1; i <= 5; ++i) {
        EXPECT_EQ(group.replies_for(i), 3) << "request " << i;
    }
    EXPECT_EQ(group.replicas[0]->exec_stats().prebatched_submits, 1u);
    EXPECT_EQ(group.replicas[0]->exec_stats().batches_cut, 1u);
}

TEST(Replica, PrebatchedSubmitSplitsOnlyAtSizeCap) {
    // Bursts beyond batch_size_max split at the cap: 10 requests with a
    // cap of 4 become batches of 4+4+2.
    BareGroup group(1, /*batch_size_max=*/4, /*batch_delay=*/0);
    std::vector<Request> burst;
    for (std::uint64_t i = 1; i <= 10; ++i) {
        burst.push_back(
            group.make_request(i, apps::EchoService::make_write(i, 32)));
    }
    group.replicas[0]->submit_prebatched(std::move(burst));
    group.sim.run_until(sim::seconds(2));

    for (const auto& replica : group.replicas) {
        EXPECT_EQ(replica->last_executed(), 3u);
    }
    for (std::uint64_t i = 1; i <= 10; ++i) {
        EXPECT_EQ(group.replies_for(i), 3) << "request " << i;
    }
    EXPECT_EQ(group.replicas[0]->exec_stats().batches_cut, 3u);
}

}  // namespace
}  // namespace troxy::hybster
