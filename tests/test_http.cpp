#include <gtest/gtest.h>

#include "http/http.hpp"
#include "http/page_service.hpp"

namespace troxy::http {
namespace {

TEST(HttpParser, ParsesGetRequest) {
    const Bytes raw = to_bytes(
        "GET /page/3 HTTP/1.1\r\nHost: example.com\r\n"
        "Content-Length: 0\r\n\r\n");
    const auto request = parse_request(raw);
    ASSERT_TRUE(request.has_value());
    EXPECT_EQ(request->method, "GET");
    EXPECT_EQ(request->path, "/page/3");
    EXPECT_EQ(request->headers.at("host"), "example.com");
    EXPECT_TRUE(request->body.empty());
}

TEST(HttpParser, ParsesPostWithBody) {
    const Bytes raw = to_bytes(
        "POST /page/1 HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
    const auto request = parse_request(raw);
    ASSERT_TRUE(request.has_value());
    EXPECT_EQ(request->method, "POST");
    EXPECT_EQ(to_string(request->body), "hello");
}

TEST(HttpParser, HeaderNamesCaseInsensitive) {
    const Bytes raw = to_bytes(
        "GET / HTTP/1.1\r\ncOnTeNt-LeNgTh: 0\r\nX-Custom: Value\r\n\r\n");
    const auto request = parse_request(raw);
    ASSERT_TRUE(request.has_value());
    EXPECT_EQ(request->headers.at("x-custom"), "Value");
}

TEST(HttpParser, RejectsMalformedInput) {
    EXPECT_FALSE(parse_request(to_bytes("")).has_value());
    EXPECT_FALSE(parse_request(to_bytes("GET /")).has_value());  // no CRLF
    EXPECT_FALSE(parse_request(to_bytes("GARBAGE\r\n\r\n")).has_value());
    // Body shorter than Content-Length.
    EXPECT_FALSE(parse_request(to_bytes(
                     "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"))
                     .has_value());
    // Non-numeric Content-Length.
    EXPECT_FALSE(parse_request(to_bytes(
                     "GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n"))
                     .has_value());
}

TEST(HttpParser, RequestSerializeParseRoundTrip) {
    HttpRequest request;
    request.method = "POST";
    request.path = "/page/9";
    request.headers["host"] = "h";
    request.body = to_bytes("body bytes");
    const auto parsed = parse_request(request.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->method, "POST");
    EXPECT_EQ(parsed->path, "/page/9");
    EXPECT_EQ(parsed->body, request.body);
}

TEST(HttpParser, ResponseSerializeParseRoundTrip) {
    HttpResponse response;
    response.status = 404;
    response.reason = "Not Found";
    response.body = to_bytes("missing");
    const auto parsed = parse_response(response.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->status, 404);
    EXPECT_EQ(parsed->reason, "Not Found");
    EXPECT_EQ(to_string(parsed->body), "missing");
}

TEST(HttpParser, ResponseRejectsBadStatus) {
    EXPECT_FALSE(parse_response(to_bytes(
                     "HTTP/1.1 9999 Weird\r\nContent-Length: 0\r\n\r\n"))
                     .has_value());
    EXPECT_FALSE(parse_response(to_bytes(
                     "NOTHTTP 200 OK\r\nContent-Length: 0\r\n\r\n"))
                     .has_value());
}

// -------------------------------------------------------------- PageService

TEST(PageService, GetReturnsPage) {
    PageService service(8);
    const Bytes raw = service.execute(PageService::make_get(2));
    const auto response = parse_response(raw);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 200);
    EXPECT_EQ(to_string(response->body), PageService::initial_content(2));
}

TEST(PageService, GetUnknownPageIs404) {
    PageService service(2);
    const auto response =
        parse_response(service.execute(PageService::make_get(99)));
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 404);
}

TEST(PageService, PostUpdatesPage) {
    PageService service(4);
    service.execute(PageService::make_post(1, to_bytes("<p>updated</p>")));
    const auto response =
        parse_response(service.execute(PageService::make_get(1)));
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(to_string(response->body), "<p>updated</p>");
}

TEST(PageService, PageSizesInPaperRange) {
    // §VI-D: response sizes between 4 KB and 18 KB.
    for (int page = 0; page < 20; ++page) {
        const std::size_t size = PageService::initial_size(page);
        EXPECT_GE(size, 4096u);
        EXPECT_LE(size, 18 * 1024u);
    }
}

TEST(PageService, ClassifierMapsMethodsToReadWrite) {
    const auto classify = PageService::classifier();
    const auto get = classify(PageService::make_get(3));
    EXPECT_TRUE(get.is_read);
    EXPECT_EQ(get.state_key, "http:/page/3");

    const auto post = classify(PageService::make_post(3, to_bytes("x")));
    EXPECT_FALSE(post.is_read);
    EXPECT_EQ(post.state_key, "http:/page/3");

    // Unparseable data is conservatively a read of an "invalid" partition.
    const auto junk = classify(to_bytes("junk"));
    EXPECT_TRUE(junk.is_read);
}

TEST(PageService, MalformedRequestGets400) {
    PageService service(2);
    const auto response = parse_response(service.execute(to_bytes("junk")));
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 400);
}

TEST(PageService, UnsupportedMethodGets405) {
    PageService service(2);
    HttpRequest request;
    request.method = "PATCH";
    request.path = "/page/0";
    const auto response = parse_response(service.execute(request.serialize()));
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 405);
}

TEST(PageService, CheckpointRestore) {
    PageService a(4);
    a.execute(PageService::make_post(0, to_bytes("changed")));
    PageService b(0);
    b.restore(a.checkpoint());
    const auto response =
        parse_response(b.execute(PageService::make_get(0)));
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(to_string(response->body), "changed");
}

TEST(PageService, DeterministicExecution) {
    PageService a(4), b(4);
    const Bytes get = PageService::make_get(1);
    EXPECT_EQ(a.execute(get), b.execute(get));
}

}  // namespace
}  // namespace troxy::http
