#include <gtest/gtest.h>

#include "apps/echo_service.hpp"
#include "apps/kv_service.hpp"
#include "common/serialize.hpp"

namespace troxy::apps {
namespace {

TEST(EchoService, ClassifiesReadsAndWrites) {
    EchoService service;
    const auto read = service.classify(EchoService::make_read(3, 64, 128));
    EXPECT_TRUE(read.is_read);
    EXPECT_EQ(read.state_key, "k3");

    const auto write = service.classify(EchoService::make_write(7, 64));
    EXPECT_FALSE(write.is_read);
    EXPECT_EQ(write.state_key, "k7");
}

TEST(EchoService, RequestSizesApproximatelyHonored) {
    for (const std::size_t size : {256u, 1024u, 4096u, 8192u}) {
        const Bytes request = EchoService::make_write(1, size);
        EXPECT_NEAR(static_cast<double>(request.size()),
                    static_cast<double>(size), 32.0);
    }
}

TEST(EchoService, ReadReplyHasRequestedSize) {
    EchoService service;
    const Bytes reply = service.execute(EchoService::make_read(2, 64, 4096));
    EXPECT_EQ(reply.size(), 4096u);
}

TEST(EchoService, WriteBumpsVersionAndChangesReads) {
    EchoService service;
    const Bytes before = service.execute(EchoService::make_read(5, 64, 256));
    service.execute(EchoService::make_write(5, 64));
    const Bytes after = service.execute(EchoService::make_read(5, 64, 256));
    EXPECT_NE(before, after);
    EXPECT_EQ(service.version_of(5), 1u);
    EXPECT_EQ(after, EchoService::expected_read_reply(5, 1, 256));
}

TEST(EchoService, WritesToOtherKeysDoNotInterfere) {
    EchoService service;
    const Bytes before = service.execute(EchoService::make_read(1, 64, 128));
    service.execute(EchoService::make_write(2, 64));
    const Bytes after = service.execute(EchoService::make_read(1, 64, 128));
    EXPECT_EQ(before, after);
}

TEST(EchoService, DeterministicAcrossInstances) {
    EchoService a, b;
    const Bytes request = EchoService::make_write(9, 512);
    EXPECT_EQ(a.execute(request), b.execute(request));
    EXPECT_EQ(a.execute(EchoService::make_read(9, 64, 1024)),
              b.execute(EchoService::make_read(9, 64, 1024)));
}

TEST(EchoService, CheckpointRestoreRoundTrip) {
    EchoService a;
    a.execute(EchoService::make_write(1, 64));
    a.execute(EchoService::make_write(1, 64));
    a.execute(EchoService::make_write(2, 64));

    EchoService b;
    b.restore(a.checkpoint());
    EXPECT_EQ(b.version_of(1), 2u);
    EXPECT_EQ(b.version_of(2), 1u);
    EXPECT_EQ(b.execute(EchoService::make_read(1, 64, 64)),
              a.execute(EchoService::make_read(1, 64, 64)));
}

TEST(EchoService, WriteAckIsTenBytes) {
    // The paper's write replies are always 10 B.
    EchoService service;
    EXPECT_EQ(service.execute(EchoService::make_write(1, 4096)).size(), 10u);
}

TEST(KvService, PutGetDelete) {
    KvService service;
    EXPECT_EQ(to_string(service.execute(KvService::make_get("a"))), "");
    service.execute(KvService::make_put("a", "1"));
    EXPECT_EQ(to_string(service.execute(KvService::make_get("a"))), "1");
    EXPECT_EQ(to_string(service.execute(KvService::make_put("a", "2"))),
              "1");  // returns previous
    EXPECT_EQ(to_string(service.execute(KvService::make_delete("a"))), "2");
    EXPECT_EQ(to_string(service.execute(KvService::make_get("a"))), "");
}

TEST(KvService, ScanFindsPrefixMatches) {
    KvService service;
    service.execute(KvService::make_put("user:1", "a"));
    service.execute(KvService::make_put("user:2", "b"));
    service.execute(KvService::make_put("item:1", "c"));

    const Bytes result = service.execute(KvService::make_scan("user:"));
    Reader r(result);
    EXPECT_EQ(r.u32(), 2u);
    EXPECT_EQ(r.str(), "user:1");
    EXPECT_EQ(r.str(), "user:2");
}

TEST(KvService, ClassifyAndStateKeys) {
    KvService service;
    const auto get = service.classify(KvService::make_get("x"));
    EXPECT_TRUE(get.is_read);
    EXPECT_EQ(get.state_key, "kv:x");

    const auto put = service.classify(KvService::make_put("x", "v"));
    EXPECT_FALSE(put.is_read);
    EXPECT_EQ(put.state_key, "kv:x");

    const auto scan = service.classify(KvService::make_scan("x"));
    EXPECT_TRUE(scan.is_read);
    EXPECT_EQ(scan.state_key, "scan:x");
}

TEST(KvService, MutationWriteSetCoversScanPartitions) {
    // A put/delete's write set is its exact key plus every covering scan
    // partition (each prefix of the key, including the empty prefix =
    // full scan) — that closure keeps cached scans coherent. Reads carry
    // no extra keys, so they never gate or invalidate anything extra.
    KvService service;
    const auto put = service.classify(KvService::make_put("ab", "v"));
    EXPECT_EQ(put.extra_keys, (std::vector<std::string>{
                                  "scan:", "scan:a", "scan:ab"}));
    EXPECT_EQ(put.all_keys(), (std::vector<std::string>{
                                  "kv:ab", "scan:", "scan:a", "scan:ab"}));

    const auto del = service.classify(KvService::make_delete("ab"));
    EXPECT_EQ(del.extra_keys, put.extra_keys);

    EXPECT_TRUE(service.classify(KvService::make_get("ab")).extra_keys
                    .empty());
    EXPECT_TRUE(service.classify(KvService::make_scan("ab")).extra_keys
                    .empty());
}

TEST(KvService, CheckpointRestore) {
    KvService a;
    a.execute(KvService::make_put("k1", "v1"));
    a.execute(KvService::make_put("k2", "v2"));
    KvService b;
    b.restore(a.checkpoint());
    EXPECT_EQ(to_string(b.execute(KvService::make_get("k1"))), "v1");
    EXPECT_EQ(to_string(b.execute(KvService::make_get("k2"))), "v2");
    EXPECT_EQ(b.size(), 2u);
}

TEST(KvService, MalformedRequestHandledGracefully) {
    KvService service;
    const Bytes reply = service.execute(Bytes{0xff});
    EXPECT_TRUE(to_string(reply).starts_with("ERR"));
    const auto info = service.classify(Bytes{0xff});
    EXPECT_TRUE(info.is_read);  // conservative: never caches invalid
}

}  // namespace
}  // namespace troxy::apps
