// Baseline systems: PBFT replica group, PBFT client voting, and the
// Prophecy middlebox sketch behaviour.
#include <gtest/gtest.h>

#include "apps/echo_service.hpp"
#include "baselines/pbft.hpp"
#include "bench_support/cluster.hpp"
#include "http/http.hpp"
#include "http/page_service.hpp"
#include "net/envelope.hpp"

namespace troxy::baselines {
namespace {

using apps::EchoService;

// --------------------------------------------------------- PBFT wire layer

TEST(PbftFrames, SealOpenRoundTrip) {
    net::MacTable macs = net::MacTable::for_group(to_bytes("m"), {1, 2});
    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(sim::CostProfile::java(), meter);

    const Bytes frame = pbft::seal_frame(crypto, macs, 1, 2,
                                         pbft::PbftType::Prepare,
                                         to_bytes("body"));
    const auto opened = pbft::open_frame(crypto, macs, 1, 2, frame);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(opened->first, pbft::PbftType::Prepare);
    EXPECT_EQ(opened->second, to_bytes("body"));
}

TEST(PbftFrames, RejectsTamperingAndWrongLink) {
    net::MacTable macs = net::MacTable::for_group(to_bytes("m"), {1, 2, 3});
    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(sim::CostProfile::java(), meter);

    Bytes frame = pbft::seal_frame(crypto, macs, 1, 2,
                                   pbft::PbftType::Commit, to_bytes("b"));
    // Wrong destination.
    EXPECT_FALSE(pbft::open_frame(crypto, macs, 1, 3, frame).has_value());
    // Tampered body.
    frame[1] ^= 1;
    EXPECT_FALSE(pbft::open_frame(crypto, macs, 1, 2, frame).has_value());
    // Too short.
    EXPECT_FALSE(
        pbft::open_frame(crypto, macs, 1, 2, Bytes(10, 0)).has_value());
}

TEST(PbftConfig, Validation) {
    pbft::Config config;
    config.f = 1;
    config.replicas = {1, 2, 3, 4};
    config.validate();
    EXPECT_EQ(config.prepared_quorum(), 2);
    EXPECT_EQ(config.commit_quorum(), 3);
    EXPECT_EQ(config.reply_quorum(), 2);
}

// -------------------------------------------------------- PBFT replica set

struct PbftGroup {
    sim::Simulator sim{55};
    sim::Network network{sim};
    net::Fabric fabric{sim, network};
    pbft::Config config;
    std::shared_ptr<net::MacTable> macs;
    std::vector<std::unique_ptr<sim::Node>> nodes;
    std::vector<std::unique_ptr<pbft::PbftReplica>> replicas;
    std::unique_ptr<sim::Node> client_node;
    std::unique_ptr<pbft::PbftClient> client;
    sim::CostProfile profile = sim::CostProfile::java();

    PbftGroup() {
        config.f = 1;
        config.checkpoint_interval = 8;
        config.view_change_timeout = sim::milliseconds(200);
        for (int i = 0; i < 4; ++i) {
            config.replicas.push_back(static_cast<sim::NodeId>(i + 1));
        }
        std::vector<sim::NodeId> group = config.replicas;
        group.push_back(99);  // the client
        macs = std::make_shared<net::MacTable>(
            net::MacTable::for_group(to_bytes("pbft-test"), group));

        for (int i = 0; i < 4; ++i) {
            nodes.push_back(std::make_unique<sim::Node>(
                sim, config.replicas[static_cast<std::size_t>(i)],
                "p" + std::to_string(i), 4));
            replicas.push_back(std::make_unique<pbft::PbftReplica>(
                fabric, *nodes.back(), config,
                static_cast<std::uint32_t>(i),
                std::make_unique<EchoService>(), macs, profile));
            auto* replica = replicas.back().get();
            fabric.attach(config.replicas[static_cast<std::size_t>(i)],
                          [replica](sim::NodeId from, Bytes message) {
                              auto unwrapped = net::unwrap(message);
                              if (!unwrapped) return;
                              replica->on_message(from, unwrapped->second);
                          });
        }
        client_node = std::make_unique<sim::Node>(sim, 99, "client", 4);
        client = std::make_unique<pbft::PbftClient>(
            fabric, *client_node, config, macs, profile,
            sim::milliseconds(400));
        fabric.attach(99, [this](sim::NodeId from, Bytes message) {
            auto unwrapped = net::unwrap(message);
            if (!unwrapped) return;
            client->on_message(from, unwrapped->second);
        });
    }
};

TEST(Pbft, OrdersAndVotes) {
    PbftGroup group;
    Bytes result;
    bool done = false;
    group.client->invoke(EchoService::make_write(1, 64), false,
                         [&](Bytes r) {
                             result = std::move(r);
                             done = true;
                         });
    group.sim.run_until(sim::seconds(2));
    ASSERT_TRUE(done);
    EXPECT_EQ(result.size(), 10u);
    for (const auto& replica : group.replicas) {
        EXPECT_EQ(replica->last_executed(), 1u);
    }
}

TEST(Pbft, SequentialRequestsStayConsistent) {
    PbftGroup group;
    int done = 0;
    std::function<void(int)> loop = [&](int remaining) {
        if (remaining == 0) return;
        group.client->invoke(EchoService::make_write(remaining % 3, 64),
                             false, [&, remaining](Bytes) {
                                 ++done;
                                 loop(remaining - 1);
                             });
    };
    loop(12);
    group.sim.run_until(sim::seconds(5));
    EXPECT_EQ(done, 12);
    const Bytes snapshot = group.replicas[0]->service().checkpoint();
    for (const auto& replica : group.replicas) {
        EXPECT_EQ(replica->service().checkpoint(), snapshot);
    }
}

TEST(Pbft, ReadOneExecutesWithoutOrdering) {
    PbftGroup group;
    bool done = false;
    group.client->invoke(EchoService::make_write(2, 64), false, [&](Bytes) {
        group.client->read_one(EchoService::make_read(2, 32, 128), 1,
                               [&](Bytes reply) {
                                   EXPECT_EQ(
                                       reply,
                                       EchoService::expected_read_reply(
                                           2, 1, 128));
                                   done = true;
                               });
    });
    group.sim.run_until(sim::seconds(2));
    EXPECT_TRUE(done);
    EXPECT_EQ(group.replicas[1]->last_executed(), 1u);  // read not ordered
}

TEST(Pbft, ToleratesOneCrashedFollower) {
    PbftGroup group;
    hybster::FaultProfile crash;
    crash.crashed = true;
    group.replicas[3]->set_faults(crash);

    bool done = false;
    group.client->invoke(EchoService::make_write(1, 64), false,
                         [&](Bytes) { done = true; });
    group.sim.run_until(sim::seconds(2));
    EXPECT_TRUE(done);
}

TEST(Pbft, CorruptReplicaOutvoted) {
    PbftGroup group;
    hybster::FaultProfile corrupt;
    corrupt.corrupt_replies = true;
    group.replicas[2]->set_faults(corrupt);

    Bytes result;
    bool done = false;
    group.client->invoke(EchoService::make_write(3, 64), false,
                         [&](Bytes r) {
                             result = std::move(r);
                             done = true;
                         });
    group.sim.run_until(sim::seconds(2));
    ASSERT_TRUE(done);
    // The corrupt replica's reply differs; the voted result is correct.
    EchoService reference;
    EXPECT_EQ(result, reference.execute(EchoService::make_write(3, 64)));
}

TEST(Pbft, ViewChangeOnCrashedLeader) {
    PbftGroup group;
    bool warm = false;
    group.client->invoke(EchoService::make_write(1, 64), false,
                         [&](Bytes) { warm = true; });
    group.sim.run_until(sim::seconds(1));
    ASSERT_TRUE(warm);

    hybster::FaultProfile crash;
    crash.crashed = true;
    group.replicas[0]->set_faults(crash);

    bool done = false;
    group.client->invoke(EchoService::make_write(2, 64), false,
                         [&](Bytes) { done = true; });
    group.sim.run_until(sim::seconds(6));
    EXPECT_TRUE(done);
    EXPECT_GT(group.replicas[1]->view(), 0u);
}

// ---------------------------------------------------------------- Prophecy

bench::ProphecyCluster::Params prophecy_params(std::uint64_t seed) {
    bench::ProphecyCluster::Params params;
    params.base.seed = seed;
    params.service = []() { return std::make_unique<http::PageService>(8); };
    params.classifier = http::PageService::classifier();
    return params;
}

TEST(Prophecy, SketchFastPathAfterFirstRead) {
    bench::ProphecyCluster cluster(prophecy_params(61));
    auto& client = cluster.add_client();

    int done = 0;
    std::function<void(int)> loop;
    loop = [&](int remaining) {
        if (remaining == 0) return;
        client.send(http::PageService::make_get(2),
                    [&, remaining](Bytes response) {
                        auto parsed = http::parse_response(response);
                        ASSERT_TRUE(parsed.has_value());
                        EXPECT_EQ(parsed->status, 200);
                        ++done;
                        loop(remaining - 1);
                    });
    };
    client.start([&]() { loop(6); });
    cluster.simulator().run_until(sim::seconds(10));
    ASSERT_EQ(done, 6);
    const auto& stats = cluster.middlebox().stats();
    EXPECT_EQ(stats.sketch_misses, 1u);  // only the first read
    EXPECT_GE(stats.fast_hits, 4u);
}

TEST(Prophecy, WriteLeavesSketchStaleThenRecovers) {
    bench::ProphecyCluster cluster(prophecy_params(62));
    auto& client = cluster.add_client();

    std::string final_body;
    bool done = false;
    client.start([&]() {
        client.send(http::PageService::make_get(1), [&](Bytes) {
            client.send(http::PageService::make_post(1, to_bytes("fresh")),
                        [&](Bytes) {
                            client.send(http::PageService::make_get(1),
                                        [&](Bytes response) {
                                            auto parsed =
                                                http::parse_response(
                                                    response);
                                            ASSERT_TRUE(parsed.has_value());
                                            final_body =
                                                to_string(parsed->body);
                                            done = true;
                                        });
                        });
    });
    });
    cluster.simulator().run_until(sim::seconds(10));
    ASSERT_TRUE(done);
    // The post-write read conflicts with the stale sketch, falls back to
    // an ordered read, and returns the fresh content (all replicas are
    // correct and caught up here).
    EXPECT_EQ(final_body, "fresh");
    EXPECT_GE(cluster.middlebox().stats().fast_conflicts, 1u);
}

}  // namespace
}  // namespace troxy::baselines
