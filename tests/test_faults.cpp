// Fault injection against the Troxy-backed system: the §VI-B security
// analysis scenarios that are testable in simulation.
#include <gtest/gtest.h>

#include "apps/echo_service.hpp"
#include "bench_support/cluster.hpp"
#include "net/client_framing.hpp"
#include "net/envelope.hpp"

namespace troxy {
namespace {

using apps::EchoService;

bench::TroxyCluster::Params params_with_seed(std::uint64_t seed) {
    bench::TroxyCluster::Params params;
    params.base.seed = seed;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    // Faster fallback so fault tests converge quickly.
    params.host.vote_timeout = sim::milliseconds(500);
    params.host.fast_read_timeout = sim::milliseconds(20);
    return params;
}

// A replica that lies about results is outvoted: the client still gets
// the correct reply (f+1 matching, Troxy-authenticated).
TEST(Faults, CorruptReplicaOutvoted) {
    bench::TroxyCluster cluster(params_with_seed(71));
    hybster::FaultProfile corrupt;
    corrupt.corrupt_replies = true;
    cluster.host(2).replica().set_faults(corrupt);

    auto& client = cluster.add_client(0);
    Bytes read_reply;
    bool done = false;
    client.start([&]() {
        client.send(EchoService::make_write(1, 64), [&](Bytes) {
            client.send(EchoService::make_read(1, 32, 256),
                        [&](Bytes reply) {
                            read_reply = std::move(reply);
                            done = true;
                        });
        });
    });
    cluster.simulator().run_until(sim::seconds(10));
    ASSERT_TRUE(done);
    EXPECT_EQ(read_reply, EchoService::expected_read_reply(1, 1, 256));
}

// A replica that drops all replies cannot stall the system: the other
// f+1 replicas' authenticated replies complete the vote.
TEST(Faults, ReplyDropperToleratedByVoter) {
    bench::TroxyCluster cluster(params_with_seed(72));
    hybster::FaultProfile drop;
    drop.drop_replies = true;
    cluster.host(1).replica().set_faults(drop);

    auto& client = cluster.add_client(0);
    bool done = false;
    client.start([&]() {
        client.send(EchoService::make_write(2, 64),
                    [&](Bytes) { done = true; });
    });
    cluster.simulator().run_until(sim::seconds(10));
    EXPECT_TRUE(done);
}

// Stale-cache performance attack (§VI-B): a replica that withholds
// replies from its Troxy leaves that Troxy's cache stale. Fast reads that
// sample it mismatch and fall back to ordering — slower, never wrong.
TEST(Faults, StaleCacheCausesFallbackNotStaleness) {
    bench::TroxyCluster cluster(params_with_seed(73));
    auto& client = cluster.add_client(0);

    // Warm phase: write + read so every cache holds version 1.
    int phase = 0;
    client.start([&]() {
        client.send(EchoService::make_write(1, 64), [&](Bytes) {
            client.send(EchoService::make_read(1, 32, 128),
                        [&](Bytes) { phase = 1; });
        });
    });
    cluster.simulator().run_until(sim::seconds(5));
    ASSERT_EQ(phase, 1);

    // Now replica 2 goes silent towards its Troxy: it executes but never
    // authenticates/sends replies, so its cache stops being maintained.
    hybster::FaultProfile drop;
    drop.drop_replies = true;
    cluster.host(2).replica().set_faults(drop);

    // A write bumps the version — replica 2's cache keeps the stale entry
    // for a while (no invalidation without reply authentication).
    client.send(EchoService::make_write(1, 64), [&](Bytes) { phase = 2; });
    cluster.simulator().run_until(sim::seconds(10));
    ASSERT_EQ(phase, 2);

    // Reads must return version 2 regardless of which remote Troxy the
    // fast path samples.
    int correct = 0;
    std::function<void(int)> read_loop = [&](int remaining) {
        if (remaining == 0) return;
        client.send(EchoService::make_read(1, 32, 128),
                    [&, remaining](Bytes reply) {
                        if (reply ==
                            EchoService::expected_read_reply(1, 2, 128)) {
                            ++correct;
                        }
                        read_loop(remaining - 1);
                    });
    };
    read_loop(8);
    cluster.simulator().run_until(sim::seconds(30));
    EXPECT_EQ(correct, 8);
}

// Crash of the contact replica: the legacy client fails over to another
// Troxy via its ordinary reconnect logic (§III-D) and completes.
TEST(Faults, ContactReplicaCrashFailover) {
    bench::TroxyCluster cluster(params_with_seed(74));
    auto& client = cluster.add_client(1);  // contact = replica 1 (follower)

    bool first_done = false;
    client.start([&]() {
        client.send(EchoService::make_write(5, 64),
                    [&](Bytes) { first_done = true; });
    });
    cluster.simulator().run_until(sim::seconds(5));
    ASSERT_TRUE(first_done);

    hybster::FaultProfile crash;
    crash.crashed = true;
    cluster.host(1).set_faults(crash);

    bool second_done = false;
    client.send(EchoService::make_read(5, 32, 64), [&](Bytes reply) {
        EXPECT_EQ(reply, EchoService::expected_read_reply(5, 1, 64));
        second_done = true;
    });
    cluster.simulator().run_until(sim::seconds(30));
    EXPECT_TRUE(second_done);
    EXPECT_GE(client.failovers(), 1u);
}

// Leader crash: the troxies (acting as BFT clients) retransmit, followers
// suspect, a view change installs a new leader, service continues.
TEST(Faults, LeaderCrashViewChangeRecovers) {
    bench::TroxyCluster::Params params = params_with_seed(75);
    bench::TroxyCluster cluster(std::move(params));
    auto& client = cluster.add_client(1);  // contact replica 1, leader is 0

    bool first_done = false;
    client.start([&]() {
        client.send(EchoService::make_write(3, 64),
                    [&](Bytes) { first_done = true; });
    });
    cluster.simulator().run_until(sim::seconds(5));
    ASSERT_TRUE(first_done);

    hybster::FaultProfile crash;
    crash.crashed = true;
    cluster.host(0).set_faults(crash);

    bool second_done = false;
    client.send(EchoService::make_write(3, 64),
                [&](Bytes) { second_done = true; });
    cluster.simulator().run_until(sim::seconds(40));
    EXPECT_TRUE(second_done);
    EXPECT_GT(cluster.host(1).replica().view(), 0u);
}

// View change under compound faults: the leader host crashes while a
// stream of writes is in flight AND the link between the two surviving
// replicas is lossy. Retransmissions must push the view change through
// the lossy link, after which every outstanding and subsequent request
// completes on the new leader.
TEST(Faults, LeaderCrashMidStreamWithLossyLink) {
    bench::TroxyCluster::Params params = params_with_seed(78);
    params.base.checkpoint_interval = 8;
    params.client.connection_timeout = sim::milliseconds(500);
    bench::TroxyCluster cluster(std::move(params));
    auto& client = cluster.add_client(1);

    // 30% loss both ways between the survivors (replica 1 on node 2,
    // replica 2 on node 3) for the whole run.
    cluster.network().set_loss_bidirectional(
        cluster.config().node_of(1), cluster.config().node_of(2), 0.3);

    int done = 0;
    std::function<void(int)> write_loop = [&](int remaining) {
        if (remaining == 0) return;
        client.send(EchoService::make_write(9, 64), [&, remaining](Bytes) {
            ++done;
            // Crash the leader mid-stream: five writes are done, the
            // rest have to survive the view change.
            if (done == 5) cluster.crash_host(0);
            write_loop(remaining - 1);
        });
    };
    client.start([&]() { write_loop(20); });

    cluster.simulator().run_until(sim::seconds(60));
    EXPECT_EQ(done, 20);
    EXPECT_GT(cluster.host(1).replica().view(), 0u);
    EXPECT_GT(cluster.network().drops().by_loss, 0u);
    // The survivors converged on one state.
    EXPECT_EQ(cluster.host(1).replica().service().checkpoint(),
              cluster.host(2).replica().service().checkpoint());
}

// Bypassing the Troxy (§VI-B): raw bytes injected by a malicious replica
// towards the client are rejected by the secure channel — the client
// ignores them and its session continues to work.
TEST(Faults, BypassAttemptRejectedByChannel) {
    bench::TroxyCluster cluster(params_with_seed(76));
    auto& client = cluster.add_client(0);

    bool done = false;
    Bytes reply_seen;
    client.start([&]() {
        // Malicious untrusted code on replica 0 injects a forged record.
        cluster.fabric().send(
            cluster.config().node_of(0),
            1000,  // the client's node id
            net::wrap(net::Channel::Client,
                      net::frame_client(net::ClientFrame::Record,
                                        to_bytes("forged-not-encrypted"))));
        client.send(EchoService::make_write(1, 64), [&](Bytes reply) {
            reply_seen = std::move(reply);
            done = true;
        });
    });
    cluster.simulator().run_until(sim::seconds(10));
    ASSERT_TRUE(done);
    EXPECT_FALSE(reply_seen.empty());
    EXPECT_NE(to_string(reply_seen), "forged-not-encrypted");
}

// Unauthenticated replica replies are not counted by the voter (§IV-A
// change (1) — replies must carry the sending Troxy's certificate).
TEST(Faults, ForgedReplyCertificatesRejected) {
    bench::TroxyCluster cluster(params_with_seed(77));
    auto& client = cluster.add_client(0);

    // Replicas 1 and 2 never send replies, so the vote at replica 0's
    // Troxy stays open (only the local reply arrives — one short of f+1).
    hybster::FaultProfile drop;
    drop.drop_replies = true;
    cluster.host(1).replica().set_faults(drop);
    cluster.host(2).replica().set_faults(drop);

    bool done = false;
    client.start([&]() {
        client.send(EchoService::make_write(1, 64),
                    [&](Bytes) { done = true; });
    });
    cluster.simulator().run_until(sim::seconds(1));
    ASSERT_FALSE(done);  // vote pending, as arranged

    // A malicious replica 2 now injects a forged reply with a bogus
    // certificate. The voter must reject it and the vote must NOT
    // complete on the forged value.
    hybster::Reply forged;
    forged.request_id = {cluster.config().node_of(0), 1};
    forged.result = to_bytes("wrong");
    forged.replica = 2;
    cluster.fabric().send(
        cluster.config().node_of(2), cluster.config().node_of(0),
        net::wrap(net::Channel::Hybster,
                  encode_message(hybster::Message(forged))));

    cluster.simulator().run_until(sim::seconds(2));
    EXPECT_FALSE(done);
    EXPECT_GE(cluster.host(0).troxy().status().rejected_replies, 1u);
}

}  // namespace
}  // namespace troxy
