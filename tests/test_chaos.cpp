// Chaos harness tests: seeded fault schedules against the Troxy cluster
// with safety (linearizability of voted replies) and liveness (every
// request completes once faults heal) checking, plus crash-recovery
// rejoin and bit-identical replay.
#include <gtest/gtest.h>

#include "apps/echo_service.hpp"
#include "bench_support/chaos.hpp"
#include "bench_support/cluster.hpp"

namespace troxy {
namespace {

using apps::EchoService;

std::string report_summary(const bench::ChaosReport& report) {
    std::string out = "completed " + std::to_string(report.completed) + "/" +
                      std::to_string(report.issued) + ", violations " +
                      std::to_string(report.violations);
    for (const std::string& error : report.errors) out += "\n  " + error;
    out += "\nplan:\n" + report.plan_trace;
    return out;
}

// The ISSUE scenario as an explicit plan: crash one replica mid-load,
// partition the surviving Troxies for 2 simulated seconds, heal. Must
// hold safety and complete every request for several distinct seeds
// (the seed still drives workload timing and network jitter).
TEST(Chaos, CrashPlusPartitionScenarioAcrossSeeds) {
    for (const std::uint64_t seed : {7u, 11u, 13u, 17u, 19u}) {
        bench::ChaosOptions options;
        options.seed = seed;
        // Replica r lives on server node r+1 (ids are assigned in
        // construction order starting at 1); clients are unlisted and
        // keep their links.
        options.plan.crash(sim::milliseconds(1500), 2)
            .partition(sim::seconds(2), "split", {{1}, {2}})
            .heal(sim::seconds(4), "split")
            .restart(sim::milliseconds(4500), 2);

        const bench::ChaosReport report = bench::run_chaos(options);
        EXPECT_TRUE(report.ok())
            << "seed " << seed << ": " << report_summary(report);
        EXPECT_EQ(report.restarts, 1u) << "seed " << seed;
    }
}

// Randomized schedules (crash + partition + link flap + loss window, all
// derived from the seed) across several seeds: the invariants must hold
// no matter what the generator draws.
TEST(Chaos, RandomSchedulesAcrossSeeds) {
    for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        bench::ChaosOptions options;
        options.seed = seed;
        const bench::ChaosReport report = bench::run_chaos(options);
        EXPECT_TRUE(report.ok())
            << "seed " << seed << ": " << report_summary(report);
    }
}

// Replaying the same seed yields the same fault schedule, the same
// message interleaving and the same drop decisions — bit-identical
// counters. A different seed diverges.
TEST(Chaos, SameSeedReplaysIdentically) {
    bench::ChaosOptions options;
    options.seed = 3;
    const bench::ChaosReport a = bench::run_chaos(options);
    const bench::ChaosReport b = bench::run_chaos(options);

    EXPECT_EQ(a.plan_trace, b.plan_trace);
    EXPECT_EQ(a.messages_sent, b.messages_sent);
    EXPECT_EQ(a.bytes_sent, b.bytes_sent);
    EXPECT_EQ(a.drops.by_loss, b.drops.by_loss);
    EXPECT_EQ(a.drops.by_link_down, b.drops.by_link_down);
    EXPECT_EQ(a.drops.by_partition, b.drops.by_partition);
    EXPECT_EQ(a.drops.bytes, b.drops.bytes);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.failovers, b.failovers);
    EXPECT_EQ(a.view_changes, b.view_changes);
    EXPECT_EQ(a.state_transfers, b.state_transfers);

    bench::ChaosOptions other = options;
    other.seed = 4;
    const bench::ChaosReport c = bench::run_chaos(other);
    EXPECT_NE(a.plan_trace, c.plan_trace);
}

// The batching pipeline under fire: a leader crash lands while batches
// are in flight (some prepared but not committed, some still pending in
// the leader's uncut batch), followed by a restart. View change must
// repropose the prepared batches and forwarding must rescue the rest —
// safety and liveness hold for several distinct seeds.
TEST(Chaos, LeaderCrashWithBatchingInFlight) {
    for (const std::uint64_t seed : {7u, 11u, 13u}) {
        bench::ChaosOptions options;
        options.seed = seed;
        options.batch_size_max = 8;
        options.batch_delay = sim::milliseconds(5);
        // Short think time keeps several requests in flight so batches
        // actually form around the crash instant.
        options.think_time = sim::milliseconds(20);
        // Replica 0 (the view-0 leader) lives on server node 1.
        options.plan.crash(sim::milliseconds(1500), 1)
            .restart(sim::milliseconds(4500), 1);

        const bench::ChaosReport report = bench::run_chaos(options);
        EXPECT_TRUE(report.ok())
            << "seed " << seed << ": " << report_summary(report);
        EXPECT_GE(report.view_changes, 1u) << "seed " << seed;
        EXPECT_EQ(report.restarts, 1u) << "seed " << seed;
    }
}

// Determinism survives batching: with batch cuts driven by both the size
// and delay boundaries, replaying a seed still reproduces bit-identical
// network counters.
TEST(Chaos, BatchedSameSeedReplaysIdentically) {
    bench::ChaosOptions options;
    options.seed = 3;
    options.batch_size_max = 8;
    options.batch_delay = sim::milliseconds(5);
    options.think_time = sim::milliseconds(20);
    const bench::ChaosReport a = bench::run_chaos(options);
    const bench::ChaosReport b = bench::run_chaos(options);

    EXPECT_EQ(a.plan_trace, b.plan_trace);
    EXPECT_EQ(a.messages_sent, b.messages_sent);
    EXPECT_EQ(a.bytes_sent, b.bytes_sent);
    EXPECT_EQ(a.drops.by_loss, b.drops.by_loss);
    EXPECT_EQ(a.drops.by_link_down, b.drops.by_link_down);
    EXPECT_EQ(a.drops.by_partition, b.drops.by_partition);
    EXPECT_EQ(a.drops.bytes, b.drops.bytes);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.failovers, b.failovers);
    EXPECT_EQ(a.view_changes, b.view_changes);
    EXPECT_EQ(a.state_transfers, b.state_transfers);

    // Batching changes the message flow relative to the unbatched run of
    // the same seed — fewer agreement messages for the same workload.
    bench::ChaosOptions unbatched = options;
    unbatched.batch_size_max = 1;
    unbatched.batch_delay = 0;
    const bench::ChaosReport c = bench::run_chaos(unbatched);
    EXPECT_EQ(c.completed, a.completed);
    EXPECT_NE(a.messages_sent, c.messages_sent);
}

// Parallel execution lanes under fire: with execution_lanes > 1 the
// replicas charge conflict-aware makespans instead of serial sums for
// every committed batch — through crashes, partitions and view changes
// the linearizability checker and the wire counters must behave exactly
// like a (slower) serial run, because lanes change modeled time only.
TEST(Chaos, ExecutionLanesStayLinearizableAndDeterministic) {
    for (const std::uint64_t seed : {7u, 11u}) {
        bench::ChaosOptions options;
        options.seed = seed;
        options.batch_size_max = 8;
        options.batch_delay = sim::milliseconds(5);
        options.execution_lanes = 4;
        options.think_time = sim::milliseconds(20);
        const bench::ChaosReport report = bench::run_chaos(options);
        EXPECT_TRUE(report.ok())
            << "seed " << seed << ": " << report_summary(report);
    }

    // Same-seed replay stays bit-identical with lanes on.
    bench::ChaosOptions options;
    options.seed = 3;
    options.batch_size_max = 8;
    options.batch_delay = sim::milliseconds(5);
    options.execution_lanes = 4;
    options.think_time = sim::milliseconds(20);
    const bench::ChaosReport a = bench::run_chaos(options);
    const bench::ChaosReport b = bench::run_chaos(options);
    EXPECT_TRUE(a.ok()) << report_summary(a);
    EXPECT_EQ(a.plan_trace, b.plan_trace);
    EXPECT_EQ(a.messages_sent, b.messages_sent);
    EXPECT_EQ(a.bytes_sent, b.bytes_sent);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.view_changes, b.view_changes);
}

// Batched voting plus wire coalescing under fire: replies cross the wire
// as Bundle frames, enter the enclave in handle_replies batches, and the
// ordering pipeline batches too — through a crash, a partition and the
// random fault mix, linearizability of every voted reply and completion
// of every request must still hold.
TEST(Chaos, BatchedVotingWithCoalescingStaysLinearizable) {
    for (const std::uint64_t seed : {7u, 11u, 13u}) {
        bench::ChaosOptions options;
        options.seed = seed;
        options.batch_size_max = 8;
        options.batch_delay = sim::milliseconds(5);
        options.voter_batch_max = 8;
        options.coalesce_wire = true;
        options.think_time = sim::milliseconds(20);
        options.plan.crash(sim::milliseconds(1500), 2)
            .partition(sim::seconds(2), "split", {{1}, {2}})
            .heal(sim::seconds(4), "split")
            .restart(sim::milliseconds(4500), 2);

        const bench::ChaosReport report = bench::run_chaos(options);
        EXPECT_TRUE(report.ok())
            << "seed " << seed << ": " << report_summary(report);
    }
    // Coalescing is observable on the wire (fewer records for the same
    // workload) while remaining deterministic per seed.
    bench::ChaosOptions options;
    options.seed = 3;
    options.voter_batch_max = 8;
    options.coalesce_wire = true;
    options.think_time = sim::milliseconds(20);
    const bench::ChaosReport a = bench::run_chaos(options);
    const bench::ChaosReport b = bench::run_chaos(options);
    EXPECT_TRUE(a.ok()) << report_summary(a);
    EXPECT_EQ(a.messages_sent, b.messages_sent);
    EXPECT_EQ(a.bytes_sent, b.bytes_sent);
    EXPECT_EQ(a.completed, b.completed);

    bench::ChaosOptions plain = options;
    plain.voter_batch_max = 1;
    plain.coalesce_wire = false;
    const bench::ChaosReport c = bench::run_chaos(plain);
    EXPECT_EQ(c.completed, a.completed);
    EXPECT_LT(a.messages_sent, c.messages_sent);
}

// The scatter-gather wire path under fire: coalesced bursts travel as
// fragment chains over a kernel-bypass transport (per-peer credit
// window armed) through crashes and partitions. Safety and liveness
// must hold, the wire bytes must match the flattened-Bundle flow
// exactly, and the report's pool/wire counters must surface the
// zero-copy traffic.
TEST(Chaos, ZeroCopyWirePathStaysLinearizable) {
    for (const std::uint64_t seed : {7u, 11u, 13u}) {
        bench::ChaosOptions options;
        options.seed = seed;
        options.batch_size_max = 8;
        options.batch_delay = sim::milliseconds(5);
        options.voter_batch_max = 8;
        options.coalesce_wire = true;
        options.wire_zero_copy = true;
        options.transport = sim::TransportProfile::bypass();
        options.think_time = sim::milliseconds(20);
        options.plan.crash(sim::milliseconds(1500), 2)
            .partition(sim::seconds(2), "split", {{1}, {2}})
            .heal(sim::seconds(4), "split")
            .restart(sim::milliseconds(4500), 2);

        const bench::ChaosReport report = bench::run_chaos(options);
        EXPECT_TRUE(report.ok())
            << "seed " << seed << ": " << report_summary(report);
        EXPECT_GT(report.wire.frames_zero_copy, 0u);
        EXPECT_GT(report.wire.bytes_referenced, report.wire.bytes_copied);
        EXPECT_GT(report.pool_hit_rate, 0.5);
    }
    // Zero-copy changes how frames are carried, not what is on the wire:
    // the same seed under the flattened-Bundle flow ships the identical
    // message and byte totals.
    bench::ChaosOptions options;
    options.seed = 3;
    options.voter_batch_max = 8;
    options.coalesce_wire = true;
    options.wire_zero_copy = true;
    options.think_time = sim::milliseconds(20);
    const bench::ChaosReport zc = bench::run_chaos(options);
    bench::ChaosOptions copying = options;
    copying.wire_zero_copy = false;
    const bench::ChaosReport flat = bench::run_chaos(copying);
    EXPECT_TRUE(zc.ok()) << report_summary(zc);
    EXPECT_EQ(zc.messages_sent, flat.messages_sent);
    EXPECT_EQ(zc.bytes_sent, flat.bytes_sent);
    EXPECT_EQ(zc.completed, flat.completed);
}

// The batched fast-read pipeline under fire: a read-heavy workload keeps
// the cache-quorum path hot, cache queries cross the wire as
// CacheQueryBatch bursts, responses apply in handle_cache_responses
// bursts and executed batches are certified via authenticate_replies —
// through a crash, a partition and the random fault mix, every voted or
// fast-read reply must stay linearizable and every request complete.
// (Crashes also exercise the flush-timer generation guard: buffered
// queries die with the host and the timer must not fire into the
// restarted Troxy.)
TEST(Chaos, BatchedFastReadsStayLinearizable) {
    for (const std::uint64_t seed : {7u, 11u, 13u}) {
        bench::ChaosOptions options;
        options.seed = seed;
        options.write_fraction = 0.2;  // read-heavy: fast reads dominate
        options.fastread_batch_max = 16;
        options.voter_batch_max = 8;
        options.batch_reply_auth = true;
        options.coalesce_wire = true;
        options.batch_size_max = 8;
        options.batch_delay = sim::milliseconds(5);
        options.think_time = sim::milliseconds(20);
        options.plan.crash(sim::milliseconds(1500), 2)
            .partition(sim::seconds(2), "split", {{1}, {2}})
            .heal(sim::seconds(4), "split")
            .restart(sim::milliseconds(4500), 2);

        const bench::ChaosReport report = bench::run_chaos(options);
        EXPECT_TRUE(report.ok())
            << "seed " << seed << ": " << report_summary(report);
    }
    // Same-seed replay stays bit-identical with the read pipeline on, and
    // batching is observable as fewer wire messages than the seed flow.
    bench::ChaosOptions options;
    options.seed = 3;
    options.write_fraction = 0.2;
    options.fastread_batch_max = 16;
    options.voter_batch_max = 8;
    options.batch_reply_auth = true;
    options.coalesce_wire = true;
    options.think_time = sim::milliseconds(20);
    const bench::ChaosReport a = bench::run_chaos(options);
    const bench::ChaosReport b = bench::run_chaos(options);
    EXPECT_TRUE(a.ok()) << report_summary(a);
    EXPECT_EQ(a.messages_sent, b.messages_sent);
    EXPECT_EQ(a.bytes_sent, b.bytes_sent);
    EXPECT_EQ(a.completed, b.completed);

    bench::ChaosOptions plain = options;
    plain.fastread_batch_max = 1;
    plain.voter_batch_max = 1;
    plain.batch_reply_auth = false;
    plain.coalesce_wire = false;
    const bench::ChaosReport c = bench::run_chaos(plain);
    EXPECT_EQ(c.completed, a.completed);
    EXPECT_LT(a.messages_sent, c.messages_sent);
}

// A crashed-and-restarted replica provably rejoins: it comes back empty,
// fetches the latest stable checkpoint via state transfer and catches up
// to the quorum's execution point.
TEST(Chaos, RestartedReplicaRejoinsViaStateTransfer) {
    bench::TroxyCluster::Params params;
    params.base.seed = 21;
    params.base.checkpoint_interval = 8;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    params.host.vote_timeout = sim::milliseconds(300);
    params.client.connection_timeout = sim::milliseconds(500);
    bench::TroxyCluster cluster(params);

    auto& client = cluster.add_client(0);
    int done = 0;
    std::function<void(int)> write_loop = [&](int remaining) {
        if (remaining == 0) return;
        client.send(EchoService::make_write(1, 64), [&, remaining](Bytes) {
            ++done;
            write_loop(remaining - 1);
        });
    };
    client.start([&]() { write_loop(12); });
    cluster.simulator().run_until(sim::seconds(5));
    ASSERT_EQ(done, 12);

    cluster.crash_host(2);
    ASSERT_TRUE(cluster.host(2).crashed());

    // Enough writes while replica 2 is down that the survivors stabilize
    // checkpoints past its last execution point.
    write_loop(24);
    cluster.simulator().run_until(sim::seconds(15));
    ASSERT_EQ(done, 36);
    const auto quorum_executed = cluster.host(0).replica().last_executed();
    ASSERT_GT(quorum_executed, cluster.host(2).replica().last_executed());

    cluster.restart_host(2);
    EXPECT_FALSE(cluster.host(2).crashed());
    EXPECT_EQ(cluster.host(2).restarts(), 1u);

    // A little traffic after the restart lets the rejoiner finish its
    // forced view change and execute the reproposed tail.
    write_loop(6);
    cluster.simulator().run_until(sim::seconds(30));
    ASSERT_EQ(done, 42);

    auto& rejoined = cluster.host(2).replica();
    EXPECT_FALSE(rejoined.rejoining());
    EXPECT_GE(rejoined.state_transfers(), 1u);
    EXPECT_GE(rejoined.last_executed(), quorum_executed);
    EXPECT_EQ(rejoined.service().checkpoint(),
              cluster.host(0).replica().service().checkpoint());
}


// Engine A/B under chaos and ASan: the calendar scheduler must replay
// full fault-injection runs — crashes, partitions, loss, view changes,
// state transfer — with byte-for-byte the verdicts and counters of the
// binary-heap reference engine, for several seeds. This is the
// end-to-end determinism guarantee the microscopic (time, seq) storm
// test cannot give on its own.
TEST(Chaos, CalendarAndBinaryHeapSchedulersAgree) {
    for (const std::uint64_t seed : {3u, 9u, 21u}) {
        bench::ChaosOptions options;
        options.seed = seed;
        options.requests_per_client = 25;
        options.horizon = sim::seconds(20);

        options.scheduler = sim::Simulator::Scheduler::BinaryHeap;
        const bench::ChaosReport heap = bench::run_chaos(options);
        options.scheduler = sim::Simulator::Scheduler::Calendar;
        const bench::ChaosReport calendar = bench::run_chaos(options);

        EXPECT_TRUE(heap.ok()) << report_summary(heap);
        EXPECT_EQ(heap.ok(), calendar.ok()) << "seed " << seed;
        EXPECT_EQ(heap.violations, calendar.violations) << "seed " << seed;
        EXPECT_EQ(heap.completed, calendar.completed) << "seed " << seed;
        EXPECT_EQ(heap.plan_trace, calendar.plan_trace) << "seed " << seed;
        EXPECT_EQ(heap.messages_sent, calendar.messages_sent)
            << "seed " << seed;
        EXPECT_EQ(heap.bytes_sent, calendar.bytes_sent) << "seed " << seed;
        EXPECT_EQ(heap.failovers, calendar.failovers) << "seed " << seed;
        EXPECT_EQ(heap.view_changes, calendar.view_changes)
            << "seed " << seed;
        EXPECT_EQ(heap.state_transfers, calendar.state_transfers)
            << "seed " << seed;
        EXPECT_EQ(heap.drops.by_loss, calendar.drops.by_loss)
            << "seed " << seed;
        EXPECT_EQ(heap.drops.bytes, calendar.drops.bytes)
            << "seed " << seed;
    }
}

}  // namespace
}  // namespace troxy
