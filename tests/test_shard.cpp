// Sharded-Troxy tests: the ShardMap partition function, the FrontMap
// consistent-hash ring, shard-knob validation, the zero-copy
// StateResponse framing split, the per-key lock table and the pipelined
// cross-shard commit engine, the multi-front failover path, chaos under
// shard-leader and front crashes, and S=1 byte-parity with the unsharded
// deployment.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "apps/echo_service.hpp"
#include "bench_support/chaos.hpp"
#include "bench_support/cluster.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "hybster/messages.hpp"
#include "troxy/shard_front.hpp"
#include "troxy/shard_router.hpp"

namespace troxy {
namespace {

using apps::EchoService;
using troxy_core::CrossLockTable;
using troxy_core::FrontMap;
using troxy_core::ShardMap;

// ------------------------------------------------------------- ShardMap

TEST(ShardMap, DefaultIsSingleShard) {
    ShardMap map;
    EXPECT_EQ(map.shard_count(), 1);
    EXPECT_EQ(map.shard_of(""), 0);
    EXPECT_EQ(map.shard_of("anything"), 0);
}

TEST(ShardMap, BoundaryKeyBelongsToTheShardItStarts) {
    ShardMap map(std::vector<std::string>{"g", "p"});
    EXPECT_EQ(map.shard_count(), 3);
    EXPECT_EQ(map.shard_of("a"), 0);
    EXPECT_EQ(map.shard_of("f"), 0);
    // Half-open ranges: a key exactly equal to a boundary lands in the
    // shard that boundary starts, not the one it ends.
    EXPECT_EQ(map.shard_of("g"), 1);
    EXPECT_EQ(map.shard_of("o"), 1);
    EXPECT_EQ(map.shard_of("p"), 2);
    EXPECT_EQ(map.shard_of("z"), 2);
}

TEST(ShardMap, ShardsOfCollectsDistinctShardsAscending) {
    ShardMap map(std::vector<std::string>{"g", "p"});
    hybster::RequestInfo info;
    info.state_key = "q";
    info.extra_keys = {"a", "h", "b"};
    const std::vector<int> shards = map.shards_of(info);
    ASSERT_EQ(shards.size(), 3u);
    EXPECT_EQ(shards[0], 0);
    EXPECT_EQ(shards[1], 1);
    EXPECT_EQ(shards[2], 2);

    // Extra keys on the owner shard do not make the request cross-shard.
    hybster::RequestInfo local;
    local.state_key = "a";
    local.extra_keys = {"b", "c"};
    EXPECT_EQ(map.shards_of(local).size(), 1u);
}

TEST(ShardMap, ValidateRejectsMalformedBoundaries) {
    EXPECT_THROW(ShardMap(std::vector<std::string>{""}).validate(),
                 std::invalid_argument);
    EXPECT_THROW(ShardMap(std::vector<std::string>{"m", "m"}).validate(),
                 std::invalid_argument);
    EXPECT_THROW(ShardMap(std::vector<std::string>{"p", "g"}).validate(),
                 std::invalid_argument);
    EXPECT_NO_THROW(
        ShardMap(std::vector<std::string>{"g", "p"}).validate());
}

TEST(ShardMap, SplitEvenlyCoversAndBalances) {
    std::vector<std::string> keys;
    for (int k = 0; k < 16; ++k) keys.push_back("k" + std::to_string(k));
    const ShardMap map = ShardMap::split_evenly(keys, 4);
    EXPECT_EQ(map.shard_count(), 4);
    // Total coverage: every key lands somewhere, and each shard owns at
    // least one key of the universe.
    std::vector<int> population(4, 0);
    for (const std::string& key : keys) {
        const int shard = map.shard_of(key);
        ASSERT_GE(shard, 0);
        ASSERT_LT(shard, 4);
        ++population[static_cast<std::size_t>(shard)];
    }
    for (int shard = 0; shard < 4; ++shard) {
        EXPECT_GT(population[static_cast<std::size_t>(shard)], 0);
    }

    EXPECT_THROW(ShardMap::split_evenly({"a", "b"}, 3),
                 std::invalid_argument);
}

TEST(ShardMap, SplitEvenlyRejectsUniverseSmallerThanShards) {
    // Duplicates collapse before the population check: four entries but
    // only two distinct keys cannot populate three shards.
    EXPECT_THROW(ShardMap::split_evenly({"a", "a", "b", "b"}, 3),
                 std::invalid_argument);
    // Exactly as many distinct keys as shards is the floor.
    const ShardMap tight = ShardMap::split_evenly({"a", "a", "b"}, 2);
    EXPECT_EQ(tight.shard_count(), 2);
    EXPECT_EQ(tight.shard_of("a"), 0);
    EXPECT_EQ(tight.shard_of("b"), 1);
}

TEST(ShardMap, ValidateRejectsDuplicateBoundaries) {
    // Equal adjacent boundaries would leave shard 1's range empty.
    EXPECT_THROW(ShardMap(std::vector<std::string>{"g", "g"}).validate(),
                 std::invalid_argument);
    EXPECT_THROW(
        ShardMap(std::vector<std::string>{"a", "g", "g", "p"}).validate(),
        std::invalid_argument);
}

// ------------------------------------------------------------- FrontMap

TEST(FrontMap, SingleFrontOwnsEveryClient) {
    const FrontMap map(1);
    EXPECT_EQ(map.front_count(), 1);
    for (std::uint64_t client = 0; client < 64; ++client) {
        EXPECT_EQ(map.front_of(client), 0);
        const auto order = map.failover_order(client);
        ASSERT_EQ(order.size(), 1u);
        EXPECT_EQ(order[0], 0);
    }
}

TEST(FrontMap, AssignmentIsDeterministicAndCoversEveryFront) {
    const FrontMap map(4);
    const FrontMap replay(4);
    std::set<int> seen;
    for (std::uint64_t client = 1000; client < 1064; ++client) {
        const int front = map.front_of(client);
        ASSERT_GE(front, 0);
        ASSERT_LT(front, 4);
        // Pure function of (ring, client): a rebuilt map agrees.
        EXPECT_EQ(replay.front_of(client), front);
        seen.insert(front);
    }
    // 64 clients over a 4-front ring with 16 vnodes each: every front
    // serves someone (deterministic, so this can never flake).
    EXPECT_EQ(seen.size(), 4u);
}

TEST(FrontMap, FailoverOrderIsAPermutationStartingAtTheHomeFront) {
    const FrontMap map(4);
    for (std::uint64_t client = 0; client < 32; ++client) {
        const auto order = map.failover_order(client);
        ASSERT_EQ(order.size(), 4u);
        EXPECT_EQ(order[0], map.front_of(client));
        std::set<int> distinct(order.begin(), order.end());
        EXPECT_EQ(distinct.size(), 4u);
    }
}

TEST(FrontMap, RejectsInvalidCounts) {
    EXPECT_THROW(FrontMap(0), std::invalid_argument);
    EXPECT_THROW(FrontMap(-2), std::invalid_argument);
    EXPECT_THROW(FrontMap(2, 0), std::invalid_argument);
}

// -------------------------------------------------------- CrossLockTable

TEST(CrossLockTable, DisjointCommitsAllRunImmediately) {
    CrossLockTable table;
    EXPECT_TRUE(table.admit(0, {"a", "b"}).runnable);
    EXPECT_TRUE(table.admit(1, {"c"}).runnable);
    EXPECT_TRUE(table.admit(2, {"d", "e"}).runnable);
    EXPECT_EQ(table.size(), 3u);
    EXPECT_TRUE(table.release(1).empty());
    EXPECT_TRUE(table.release(0).empty());
    EXPECT_TRUE(table.release(2).empty());
    EXPECT_EQ(table.size(), 0u);
    EXPECT_EQ(table.keys_locked(), 0u);
}

TEST(CrossLockTable, ConflictingCommitsQueueBehindSharedKeysOnly) {
    CrossLockTable table;
    EXPECT_TRUE(table.admit(0, {"a", "b"}).runnable);
    const auto second = table.admit(1, {"b", "c"});
    EXPECT_FALSE(second.runnable);
    ASSERT_EQ(second.blocked_on.size(), 1u);  // only the shared key
    EXPECT_EQ(second.blocked_on[0], "b");
    // A third commit touching only the free key "d" sails through.
    EXPECT_TRUE(table.admit(2, {"d"}).runnable);
    // Releasing 0 surfaces 1, now head of both its queues.
    const auto woken = table.release(0);
    ASSERT_EQ(woken.size(), 1u);
    EXPECT_EQ(woken[0], 1u);
    EXPECT_TRUE(table.is_runnable(1));
    table.release(1);
    table.release(2);
    EXPECT_EQ(table.size(), 0u);
}

TEST(CrossLockTable, ChainedConflictsWakeInAdmissionOrder) {
    CrossLockTable table;
    EXPECT_TRUE(table.admit(0, {"a"}).runnable);
    EXPECT_FALSE(table.admit(1, {"a", "b"}).runnable);
    EXPECT_FALSE(table.admit(2, {"b"}).runnable);  // behind 1 on "b"
    // Releasing 0 wakes only 1 — 2 still waits behind 1's hold on "b".
    const auto woken = table.release(0);
    ASSERT_EQ(woken.size(), 1u);
    EXPECT_EQ(woken[0], 1u);
    const auto next = table.release(1);
    ASSERT_EQ(next.size(), 1u);
    EXPECT_EQ(next[0], 2u);
    table.release(2);
    EXPECT_EQ(table.size(), 0u);
}

// Random overlapping key sets with interleaved admissions and
// completions: the engine must drain completely (deadlock-freedom) and
// every key must see its commits complete in admission order.
TEST(CrossLockTable, StressRandomOverlapsDrainInPerKeyAdmissionOrder) {
    CrossLockTable table;
    Rng rng(20260809);
    const std::vector<std::string> universe = {"a", "b", "c", "d",
                                               "e", "f", "g", "h"};
    constexpr std::uint64_t kCommits = 400;

    std::map<std::string, std::vector<std::uint64_t>> admitted_per_key;
    std::map<std::string, std::vector<std::uint64_t>> completed_per_key;
    std::map<std::uint64_t, std::vector<std::string>> keysets;
    std::set<std::uint64_t> ready;
    std::uint64_t next_id = 0;
    std::uint64_t completed = 0;

    while (completed < kCommits) {
        const bool admit_more =
            next_id < kCommits &&
            (ready.empty() || rng.next_below(2) == 0);
        if (admit_more) {
            std::vector<std::string> keys;
            const std::uint64_t want = 1 + rng.next_below(3);
            while (keys.size() < want) {
                const std::string& key =
                    universe[rng.next_below(universe.size())];
                if (std::find(keys.begin(), keys.end(), key) ==
                    keys.end()) {
                    keys.push_back(key);
                }
            }
            std::sort(keys.begin(), keys.end());
            const std::uint64_t id = next_id++;
            for (const std::string& key : keys) {
                admitted_per_key[key].push_back(id);
            }
            keysets[id] = keys;
            const auto admission = table.admit(id, keys);
            // blocked_on is always a subset of the commit's own keys.
            for (const std::string& key : admission.blocked_on) {
                EXPECT_NE(std::find(keys.begin(), keys.end(), key),
                          keys.end());
            }
            if (admission.runnable) ready.insert(id);
        } else {
            ASSERT_FALSE(ready.empty()) << "deadlock: " << completed
                                        << " of " << kCommits << " done";
            const std::uint64_t id = *ready.begin();
            ready.erase(ready.begin());
            EXPECT_TRUE(table.is_runnable(id));
            for (const std::string& key : keysets[id]) {
                completed_per_key[key].push_back(id);
            }
            for (const std::uint64_t successor : table.release(id)) {
                ready.insert(successor);
            }
            ++completed;
        }
    }
    EXPECT_EQ(table.size(), 0u);
    EXPECT_EQ(table.keys_locked(), 0u);
    // Per-key completion order equals per-key admission order: the FIFO
    // queues never reorder conflicting commits.
    EXPECT_EQ(completed_per_key, admitted_per_key);
}

// ----------------------------------------- multi-front knob validation

TEST(ShardCluster, RejectsInvalidFrontCounts) {
    auto make_params = [](int shards, int fronts) {
        bench::ShardedTroxyCluster::Params params;
        params.base.shard_count = shards;
        params.base.front_count = fronts;
        params.service = []() { return std::make_unique<EchoService>(); };
        params.classifier = [](ByteView request) {
            return EchoService().classify(request);
        };
        if (shards > 1) {
            params.map = ShardMap::split_evenly(
                {"k0", "k1", "k2", "k3"}, shards);
        }
        return params;
    };
    EXPECT_THROW(bench::ShardedTroxyCluster cluster(make_params(2, 0)),
                 std::invalid_argument);
    // Fronts only exist over a sharded deployment.
    EXPECT_THROW(bench::ShardedTroxyCluster cluster(make_params(1, 2)),
                 std::invalid_argument);
    bench::ShardedTroxyCluster two_fronts(make_params(2, 2));
    EXPECT_EQ(two_fronts.front_count(), 2);
    EXPECT_NE(two_fronts.front(), nullptr);
}

// ------------------------------------------------- cluster shard knobs

TEST(ShardCluster, RejectsShardCountOverReplicaBudget) {
    bench::ShardedTroxyCluster::Params params;
    params.base.shard_count = 4;
    params.base.replica_budget = 6;  // 4 shards x 3 replicas = 12 > 6
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    params.map = ShardMap::split_evenly({"k0", "k1", "k2", "k3"}, 4);
    EXPECT_THROW(bench::ShardedTroxyCluster cluster(std::move(params)),
                 std::invalid_argument);
}

TEST(ShardCluster, RejectsMapShardCountMismatch) {
    bench::ShardedTroxyCluster::Params params;
    params.base.shard_count = 4;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    params.map = ShardMap(std::vector<std::string>{"m"});  // 2 shards
    EXPECT_THROW(bench::ShardedTroxyCluster cluster(std::move(params)),
                 std::invalid_argument);
}

// ------------------------------------- StateResponse zero-copy framing

// encode() must stay byte-identical to the head/per-chunk/tail split the
// zero-copy state-transfer sender assembles from fragments.
TEST(ShardWire, StateResponseHeadTailSplitMatchesEncode) {
    hybster::StateResponse msg;
    msg.replica = 2;
    msg.view = 7;
    msg.view_start = 96;
    msg.last_stable = 128;
    for (std::size_t i = 0; i < msg.root.size(); ++i) {
        msg.root[i] = static_cast<std::uint8_t>(i);
    }
    msg.manifest.resize(3);
    for (std::size_t c = 0; c < msg.manifest.size(); ++c) {
        for (std::size_t i = 0; i < msg.manifest[c].size(); ++i) {
            msg.manifest[c][i] = static_cast<std::uint8_t>(17 * c + i);
        }
    }
    msg.chunk_index = {0, 2};
    msg.chunks.push_back(Bytes{1, 2, 3, 4});
    msg.chunks.push_back(Bytes(300, 0xAB));
    msg.proof.resize(2);
    msg.proof[0].replica = 0;
    msg.proof[1].replica = 1;

    Writer flat;
    msg.encode(flat);

    Writer split;
    msg.encode_head(split, msg.chunks.size());
    for (std::size_t i = 0; i < msg.chunks.size(); ++i) {
        split.u32(msg.chunk_index[i]);
        split.bytes(msg.chunks[i]);
    }
    msg.encode_tail(split);

    EXPECT_EQ(flat.data(), split.data());
}

// --------------------------------------------- cross-shard commit, e2e

TEST(ShardFront, CrossShardMultiwriteCommitsOnBothShards) {
    bench::ShardedTroxyCluster::Params params;
    params.base.seed = 3;
    params.base.shard_count = 2;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    // Sorted universe k0 k1 k2 k3 → boundary "k2": shard 0 owns
    // {k0, k1}, shard 1 owns {k2, k3}.
    params.map = ShardMap::split_evenly({"k0", "k1", "k2", "k3"}, 2);
    bench::ShardedTroxyCluster cluster(std::move(params));
    ASSERT_NE(cluster.front(), nullptr);
    EXPECT_EQ(cluster.front()->map().shard_of("k2"), 1);

    auto& client = cluster.add_client();
    Bytes ack;
    Bytes readback;
    Bytes boundary_ack;
    client.start([&]() {
        // Keys 0 and 2 live on different shards: the multiwrite must
        // take the ordered two-shard commit lane, and its ack must be
        // released only after both shards committed.
        client.send(EchoService::make_multi_write(0, 2, 64),
                    [&](Bytes reply) {
                        ack = std::move(reply);
                        // The partner key's commit is visible to a
                        // follow-up read routed to its owner shard.
                        client.send(
                            EchoService::make_read(2, 32, 128),
                            [&](Bytes read_reply) {
                                readback = std::move(read_reply);
                                // A key exactly on the boundary routes
                                // to the shard the boundary starts.
                                client.send(
                                    EchoService::make_write(2, 64),
                                    [&](Bytes write_reply) {
                                        boundary_ack =
                                            std::move(write_reply);
                                    });
                            });
                    });
    });
    cluster.simulator().run_until(sim::seconds(10));

    // Multiwrite ack: version 1 of key 0 on its owner shard.
    ASSERT_EQ(ack.size(), 10u);
    EXPECT_EQ(ack[0], 1);
    {
        Reader r(ByteView(ack.data() + 1, 8));
        EXPECT_EQ(r.u64(), 1u);
    }
    // Read of the partner key sees the multiwrite's version.
    EXPECT_EQ(readback, EchoService::expected_read_reply(2, 1, 128));
    // Boundary-key write executed on shard 1 bumped k2 to version 2.
    ASSERT_EQ(boundary_ack.size(), 10u);
    {
        Reader r(ByteView(boundary_ack.data() + 1, 8));
        EXPECT_EQ(r.u64(), 2u);
    }

    const auto status = cluster.front()->status();
    EXPECT_EQ(status.router_fanout, 2);
    EXPECT_EQ(status.cross_shard_commits, 1u);
    ASSERT_EQ(status.shards.size(), 2u);
    EXPECT_EQ(status.shards[0].cross_participations, 1u);
    EXPECT_EQ(status.shards[1].cross_participations, 1u);
    EXPECT_GE(status.shards[1].reads, 1u);
    EXPECT_GE(status.shards[1].writes, 2u);  // cross + boundary write
    EXPECT_EQ(status.requests, 3u);
    EXPECT_EQ(status.released, 3u);
}

// ---------------------------------------- pipelined commit engine, e2e

namespace pipelined {

bench::ShardedTroxyCluster::Params two_shard_params(
    std::size_t depth, std::uint64_t seed = 5, int fronts = 1) {
    bench::ShardedTroxyCluster::Params params;
    params.base.seed = seed;
    params.base.shard_count = 2;
    params.base.front_count = fronts;
    params.front.cross_pipeline_depth = depth;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    params.map = ShardMap::split_evenly({"k0", "k1", "k2", "k3"}, 2);
    return params;
}

std::uint64_t ack_version(const Bytes& ack) {
    EXPECT_EQ(ack.size(), 10u);
    EXPECT_EQ(ack[0], 1);
    Reader r(ByteView(ack.data() + 1, 8));
    return r.u64();
}

}  // namespace pipelined

// Two non-overlapping cross-shard commits pipelined on one connection:
// the lock table admits both immediately and the front dispatches them
// concurrently. With cross_pipeline_depth = 1 the same workload is
// forced through the serialized lane — never more than one in flight.
TEST(ShardFront, NonOverlappingCommitsPipelineAtDepthZero) {
    for (const std::size_t depth : {std::size_t{0}, std::size_t{1}}) {
        bench::ShardedTroxyCluster cluster(
            pipelined::two_shard_params(depth));
        auto& client = cluster.add_client();
        std::vector<Bytes> acks;
        client.start([&]() {
            // {k0,k2} and {k1,k3} share no key: both cross-shard, both
            // admitted runnable back-to-back.
            client.send(EchoService::make_multi_write(0, 2, 64),
                        [&](Bytes reply) { acks.push_back(std::move(reply)); });
            client.send(EchoService::make_multi_write(1, 3, 64),
                        [&](Bytes reply) { acks.push_back(std::move(reply)); });
        });
        cluster.simulator().run_until(sim::seconds(10));

        ASSERT_EQ(acks.size(), 2u) << "depth " << depth;
        EXPECT_EQ(pipelined::ack_version(acks[0]), 1u);
        EXPECT_EQ(pipelined::ack_version(acks[1]), 1u);

        const auto status = cluster.front()->status();
        EXPECT_EQ(status.cross_shard_commits, 2u);
        EXPECT_EQ(status.cross_lock_waits, 0u);
        EXPECT_TRUE(status.contended_keys.empty());
        if (depth == 0) {
            EXPECT_EQ(status.cross_inflight_peak, 2u)
                << "disjoint commits must overlap";
        } else {
            EXPECT_EQ(status.cross_inflight_peak, 1u)
                << "depth 1 must serialize";
        }
    }
}

// Three pipelined commits over the SAME key pair conflict pairwise: the
// lock table must run them one at a time, in admission order, and the
// per-key wait counters must attribute the queueing to k0 and k2.
TEST(ShardFront, ConflictingCommitsQueuePerKeyInAdmissionOrder) {
    bench::ShardedTroxyCluster cluster(pipelined::two_shard_params(0));
    auto& client = cluster.add_client();
    std::vector<Bytes> acks;
    client.start([&]() {
        for (int i = 0; i < 3; ++i) {
            client.send(EchoService::make_multi_write(0, 2, 64),
                        [&](Bytes reply) { acks.push_back(std::move(reply)); });
        }
    });
    cluster.simulator().run_until(sim::seconds(10));

    // Admission order = dispatch order: k0's version climbs 1, 2, 3 and
    // the in-order release window returns the acks in the same order.
    ASSERT_EQ(acks.size(), 3u);
    for (std::size_t i = 0; i < acks.size(); ++i) {
        EXPECT_EQ(pipelined::ack_version(acks[i]), i + 1);
    }

    const auto status = cluster.front()->status();
    EXPECT_EQ(status.cross_shard_commits, 3u);
    EXPECT_EQ(status.cross_inflight_peak, 1u)
        << "conflicting commits must not overlap";
    EXPECT_EQ(status.cross_lock_waits, 2u);
    EXPECT_GT(status.cross_lock_wait_ms_total, 0.0);
    EXPECT_GT(status.cross_p99_ms, 0.0);
    // Both keys of the shared lock set were contended, twice each.
    ASSERT_EQ(status.contended_keys.size(), 2u);
    for (const auto& [key, waits] : status.contended_keys) {
        EXPECT_TRUE(key == "k0" || key == "k2") << key;
        EXPECT_EQ(waits, 2u);
    }
}

// With at most one request outstanding, the pipelined engine and the
// serialized lane must replay byte-identically — same replies, same
// message and byte totals. This is the depth-1-equals-PR-9 argument
// reduced to an executable check.
TEST(ShardFront, DepthZeroAndDepthOneAreByteIdenticalWhenSequential) {
    auto drive = [](std::size_t depth) {
        bench::ShardedTroxyCluster cluster(
            pipelined::two_shard_params(depth, 17));
        auto& client = cluster.add_client();
        auto replies = std::make_shared<std::vector<Bytes>>();
        auto chain = std::make_shared<std::function<void(int)>>();
        *chain = [&client, chain, replies](int remaining) {
            if (remaining == 0) return;
            Bytes request;
            switch (remaining % 3) {
                case 0:
                    request = EchoService::make_multi_write(0, 2, 64);
                    break;
                case 1:
                    request = EchoService::make_read(2, 32, 96);
                    break;
                default:
                    request = EchoService::make_write(1, 64);
                    break;
            }
            client.send(std::move(request),
                        [chain, replies, remaining](Bytes reply) {
                            replies->push_back(std::move(reply));
                            (*chain)(remaining - 1);
                        });
        };
        client.start([chain]() { (*chain)(12); });
        cluster.simulator().run_until(sim::seconds(10));
        return std::make_tuple(*replies,
                               cluster.network().messages_sent(),
                               cluster.network().bytes_sent());
    };

    const auto pipelined_run = drive(0);
    const auto serialized_run = drive(1);
    EXPECT_EQ(std::get<0>(pipelined_run).size(), 12u);
    EXPECT_EQ(std::get<0>(pipelined_run), std::get<0>(serialized_run));
    EXPECT_EQ(std::get<1>(pipelined_run), std::get<1>(serialized_run));
    EXPECT_EQ(std::get<2>(pipelined_run), std::get<2>(serialized_run));
}

// Crash a client's home front mid-stream: the connection dies, the
// client's watchdog times out, and the consistent-hash failover list
// carries it to the surviving front, which serves the rest of the
// stream against the same shards.
TEST(ShardFront, ClientFailsOverToNextFrontWhenHomeFrontCrashes) {
    auto params = pipelined::two_shard_params(0, 7, /*fronts=*/2);
    params.client.connection_timeout = sim::milliseconds(200);
    params.client.backoff_cap = sim::milliseconds(1000);
    bench::ShardedTroxyCluster cluster(std::move(params));
    ASSERT_EQ(cluster.front_count(), 2);

    auto& client = cluster.add_client();
    std::vector<Bytes> acks;
    auto chain = std::make_shared<std::function<void(int)>>();
    *chain = [&client, &acks, chain](int remaining) {
        if (remaining == 0) return;
        client.send(EchoService::make_multi_write(0, 2, 64),
                    [&acks, chain, remaining](Bytes reply) {
                        acks.push_back(std::move(reply));
                        (*chain)(remaining - 1);
                    });
    };
    client.start([chain]() { (*chain)(20); });

    // Kill whichever front the client is actually talking to, while its
    // cross-shard commits are in flight (the stream drains in a few
    // milliseconds per commit, so crash early).
    int home = -1;
    cluster.simulator().after(sim::milliseconds(5), [&]() {
        for (int f = 0; f < cluster.front_count(); ++f) {
            if (cluster.front(f).node().id() == client.current_server()) {
                home = f;
            }
        }
        ASSERT_GE(home, 0);
        cluster.crash_front(home);
    });
    cluster.simulator().run_until(sim::seconds(30));

    ASSERT_GE(home, 0);
    EXPECT_TRUE(cluster.front(home).crashed());
    EXPECT_GE(client.failovers(), 1u);
    // Every request in the stream completed despite the crash, and the
    // versions the acks report climb strictly (at-least-once retry may
    // skip numbers, never repeat or regress).
    ASSERT_EQ(acks.size(), 20u);
    std::uint64_t last = 0;
    for (const Bytes& ack : acks) {
        const std::uint64_t version = pipelined::ack_version(ack);
        EXPECT_GT(version, last);
        last = version;
    }
    // The surviving front carried cross-shard commits after the crash.
    const auto survivor = cluster.front(1 - home).status();
    EXPECT_GE(survivor.cross_shard_commits, 1u);
}

// --------------------------------------------- chaos under shard faults

std::string report_summary(const bench::ChaosReport& report) {
    std::string out = "completed " + std::to_string(report.completed) +
                      "/" + std::to_string(report.issued) +
                      ", violations " + std::to_string(report.violations);
    for (const std::string& error : report.errors) out += "\n  " + error;
    out += "\nplan:\n" + report.plan_trace;
    return out;
}

// Crash shard 0's initial leader while serialized two-shard commits are
// in flight; the run must stay linearizable and complete once healed.
TEST(ShardChaos, ShardLeaderCrashDuringCrossShardCommits) {
    bench::ChaosOptions options;
    options.seed = 9;
    options.shards = 2;
    options.cross_shard_fraction = 0.4;
    options.clients = 3;
    options.requests_per_client = 30;
    // Host 0 is shard 0's replica 0 — the initial leader of the shard
    // that owns half the cross-shard commits.
    options.plan.crash(sim::milliseconds(1500), 0)
        .restart(sim::seconds(3), 0);

    const bench::ChaosReport report = bench::run_chaos(options);
    EXPECT_TRUE(report.ok()) << report_summary(report);
    EXPECT_GT(report.multiwrites_issued, 0u);
    EXPECT_GE(report.cross_shard_commits, 1u);
    EXPECT_EQ(report.router_fanout, 2);
    ASSERT_EQ(report.shards.size(), 2u);
    EXPECT_GT(report.shards[0].forwarded, 0u);
    EXPECT_GT(report.shards[1].forwarded, 0u);
    EXPECT_EQ(report.restarts, 1u);
}

// Clients hashed across two fronts; front 0 crashes mid cross-shard
// commit while shard 0's leader also crashes. The run must stay
// linearizable and drain completely: front-0 clients fail over to
// front 1, the shard heals by view change, and the restarted front
// rejoins the tier.
TEST(ShardChaos, FrontCrashWithTwoFrontsStaysLinearizable) {
    bench::ChaosOptions options;
    options.seed = 11;
    options.shards = 2;
    options.fronts = 2;
    options.cross_shard_fraction = 0.5;
    options.clients = 5;
    options.requests_per_client = 30;
    options.front_crash = 0;
    options.front_crash_at = sim::milliseconds(1800);
    options.front_restart_at = sim::seconds(4);
    options.plan.crash(sim::milliseconds(1500), 0)
        .restart(sim::seconds(3), 0);

    const bench::ChaosReport report = bench::run_chaos(options);
    EXPECT_TRUE(report.ok()) << report_summary(report);
    EXPECT_EQ(report.front_count, 2);
    EXPECT_EQ(report.front_restarts, 1u);
    EXPECT_GT(report.multiwrites_issued, 0u);
    EXPECT_GE(report.cross_shard_commits, 1u);
    EXPECT_EQ(report.restarts, 1u);
    ASSERT_EQ(report.shards.size(), 2u);
    EXPECT_GT(report.shards[0].forwarded, 0u);
    EXPECT_GT(report.shards[1].forwarded, 0u);
}

// ------------------------------------------------------ S=1 byte parity

// The same workload on the unsharded TroxyCluster and on a
// ShardedTroxyCluster with shard_count = 1 must produce identical
// replies AND identical network totals: sharding off is byte-identical,
// not just equivalent.
TEST(ShardParity, SingleShardReplaysUnshardedByteIdentically) {
    constexpr int kClients = 2;
    constexpr int kRequests = 12;

    auto drive = [](auto& cluster) {
        std::vector<troxy_core::LegacyClient*> clients;
        for (int c = 0; c < kClients; ++c) {
            clients.push_back(&cluster.add_client());
        }
        auto replies = std::make_shared<std::vector<Bytes>>();
        for (int c = 0; c < kClients; ++c) {
            troxy_core::LegacyClient* client = clients[
                static_cast<std::size_t>(c)];
            auto chain = std::make_shared<std::function<void(int)>>();
            *chain = [client, c, chain, replies](int remaining) {
                if (remaining == 0) return;
                const auto key = static_cast<std::uint64_t>(c);
                Bytes request =
                    remaining % 2 == 0
                        ? EchoService::make_write(key, 64)
                        : EchoService::make_read(key, 32, 96);
                client->send(std::move(request),
                             [chain, replies, remaining](Bytes reply) {
                                 replies->push_back(std::move(reply));
                                 (*chain)(remaining - 1);
                             });
            };
            client->start([chain]() { (*chain)(kRequests); });
        }
        cluster.simulator().run_until(sim::seconds(5));
        return std::make_tuple(*replies,
                               cluster.network().messages_sent(),
                               cluster.network().bytes_sent());
    };

    bench::TroxyCluster::Params flat_params;
    flat_params.base.seed = 21;
    flat_params.base.coalesce_wire = true;
    flat_params.host.coalesce_wire = true;
    flat_params.service = []() { return std::make_unique<EchoService>(); };
    flat_params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    bench::TroxyCluster flat(flat_params);
    const auto flat_result = drive(flat);

    bench::ShardedTroxyCluster::Params sharded_params;
    sharded_params.base.seed = 21;
    sharded_params.base.coalesce_wire = true;
    sharded_params.host.coalesce_wire = true;
    sharded_params.base.shard_count = 1;
    sharded_params.service = []() {
        return std::make_unique<EchoService>();
    };
    sharded_params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    bench::ShardedTroxyCluster sharded(std::move(sharded_params));
    EXPECT_EQ(sharded.shards(), 1);
    EXPECT_EQ(sharded.front(), nullptr);
    const auto sharded_result = drive(sharded);

    EXPECT_EQ(std::get<0>(flat_result), std::get<0>(sharded_result));
    EXPECT_EQ(std::get<1>(flat_result), std::get<1>(sharded_result));
    EXPECT_EQ(std::get<2>(flat_result), std::get<2>(sharded_result));
}

}  // namespace
}  // namespace troxy
