// Sharded-Troxy tests: the ShardMap partition function, shard-knob
// validation, the zero-copy StateResponse framing split, the front's
// cross-shard commit path end-to-end, chaos under a shard-leader crash,
// and S=1 byte-parity with the unsharded deployment.
#include <gtest/gtest.h>

#include <stdexcept>

#include "apps/echo_service.hpp"
#include "bench_support/chaos.hpp"
#include "bench_support/cluster.hpp"
#include "common/serialize.hpp"
#include "hybster/messages.hpp"
#include "troxy/shard_router.hpp"

namespace troxy {
namespace {

using apps::EchoService;
using troxy_core::ShardMap;

// ------------------------------------------------------------- ShardMap

TEST(ShardMap, DefaultIsSingleShard) {
    ShardMap map;
    EXPECT_EQ(map.shard_count(), 1);
    EXPECT_EQ(map.shard_of(""), 0);
    EXPECT_EQ(map.shard_of("anything"), 0);
}

TEST(ShardMap, BoundaryKeyBelongsToTheShardItStarts) {
    ShardMap map(std::vector<std::string>{"g", "p"});
    EXPECT_EQ(map.shard_count(), 3);
    EXPECT_EQ(map.shard_of("a"), 0);
    EXPECT_EQ(map.shard_of("f"), 0);
    // Half-open ranges: a key exactly equal to a boundary lands in the
    // shard that boundary starts, not the one it ends.
    EXPECT_EQ(map.shard_of("g"), 1);
    EXPECT_EQ(map.shard_of("o"), 1);
    EXPECT_EQ(map.shard_of("p"), 2);
    EXPECT_EQ(map.shard_of("z"), 2);
}

TEST(ShardMap, ShardsOfCollectsDistinctShardsAscending) {
    ShardMap map(std::vector<std::string>{"g", "p"});
    hybster::RequestInfo info;
    info.state_key = "q";
    info.extra_keys = {"a", "h", "b"};
    const std::vector<int> shards = map.shards_of(info);
    ASSERT_EQ(shards.size(), 3u);
    EXPECT_EQ(shards[0], 0);
    EXPECT_EQ(shards[1], 1);
    EXPECT_EQ(shards[2], 2);

    // Extra keys on the owner shard do not make the request cross-shard.
    hybster::RequestInfo local;
    local.state_key = "a";
    local.extra_keys = {"b", "c"};
    EXPECT_EQ(map.shards_of(local).size(), 1u);
}

TEST(ShardMap, ValidateRejectsMalformedBoundaries) {
    EXPECT_THROW(ShardMap(std::vector<std::string>{""}).validate(),
                 std::invalid_argument);
    EXPECT_THROW(ShardMap(std::vector<std::string>{"m", "m"}).validate(),
                 std::invalid_argument);
    EXPECT_THROW(ShardMap(std::vector<std::string>{"p", "g"}).validate(),
                 std::invalid_argument);
    EXPECT_NO_THROW(
        ShardMap(std::vector<std::string>{"g", "p"}).validate());
}

TEST(ShardMap, SplitEvenlyCoversAndBalances) {
    std::vector<std::string> keys;
    for (int k = 0; k < 16; ++k) keys.push_back("k" + std::to_string(k));
    const ShardMap map = ShardMap::split_evenly(keys, 4);
    EXPECT_EQ(map.shard_count(), 4);
    // Total coverage: every key lands somewhere, and each shard owns at
    // least one key of the universe.
    std::vector<int> population(4, 0);
    for (const std::string& key : keys) {
        const int shard = map.shard_of(key);
        ASSERT_GE(shard, 0);
        ASSERT_LT(shard, 4);
        ++population[static_cast<std::size_t>(shard)];
    }
    for (int shard = 0; shard < 4; ++shard) {
        EXPECT_GT(population[static_cast<std::size_t>(shard)], 0);
    }

    EXPECT_THROW(ShardMap::split_evenly({"a", "b"}, 3),
                 std::invalid_argument);
}

// ------------------------------------------------- cluster shard knobs

TEST(ShardCluster, RejectsShardCountOverReplicaBudget) {
    bench::ShardedTroxyCluster::Params params;
    params.base.shard_count = 4;
    params.base.replica_budget = 6;  // 4 shards x 3 replicas = 12 > 6
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    params.map = ShardMap::split_evenly({"k0", "k1", "k2", "k3"}, 4);
    EXPECT_THROW(bench::ShardedTroxyCluster cluster(std::move(params)),
                 std::invalid_argument);
}

TEST(ShardCluster, RejectsMapShardCountMismatch) {
    bench::ShardedTroxyCluster::Params params;
    params.base.shard_count = 4;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    params.map = ShardMap(std::vector<std::string>{"m"});  // 2 shards
    EXPECT_THROW(bench::ShardedTroxyCluster cluster(std::move(params)),
                 std::invalid_argument);
}

// ------------------------------------- StateResponse zero-copy framing

// encode() must stay byte-identical to the head/per-chunk/tail split the
// zero-copy state-transfer sender assembles from fragments.
TEST(ShardWire, StateResponseHeadTailSplitMatchesEncode) {
    hybster::StateResponse msg;
    msg.replica = 2;
    msg.view = 7;
    msg.view_start = 96;
    msg.last_stable = 128;
    for (std::size_t i = 0; i < msg.root.size(); ++i) {
        msg.root[i] = static_cast<std::uint8_t>(i);
    }
    msg.manifest.resize(3);
    for (std::size_t c = 0; c < msg.manifest.size(); ++c) {
        for (std::size_t i = 0; i < msg.manifest[c].size(); ++i) {
            msg.manifest[c][i] = static_cast<std::uint8_t>(17 * c + i);
        }
    }
    msg.chunk_index = {0, 2};
    msg.chunks.push_back(Bytes{1, 2, 3, 4});
    msg.chunks.push_back(Bytes(300, 0xAB));
    msg.proof.resize(2);
    msg.proof[0].replica = 0;
    msg.proof[1].replica = 1;

    Writer flat;
    msg.encode(flat);

    Writer split;
    msg.encode_head(split, msg.chunks.size());
    for (std::size_t i = 0; i < msg.chunks.size(); ++i) {
        split.u32(msg.chunk_index[i]);
        split.bytes(msg.chunks[i]);
    }
    msg.encode_tail(split);

    EXPECT_EQ(flat.data(), split.data());
}

// --------------------------------------------- cross-shard commit, e2e

TEST(ShardFront, CrossShardMultiwriteCommitsOnBothShards) {
    bench::ShardedTroxyCluster::Params params;
    params.base.seed = 3;
    params.base.shard_count = 2;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    // Sorted universe k0 k1 k2 k3 → boundary "k2": shard 0 owns
    // {k0, k1}, shard 1 owns {k2, k3}.
    params.map = ShardMap::split_evenly({"k0", "k1", "k2", "k3"}, 2);
    bench::ShardedTroxyCluster cluster(std::move(params));
    ASSERT_NE(cluster.front(), nullptr);
    EXPECT_EQ(cluster.front()->map().shard_of("k2"), 1);

    auto& client = cluster.add_client();
    Bytes ack;
    Bytes readback;
    Bytes boundary_ack;
    client.start([&]() {
        // Keys 0 and 2 live on different shards: the multiwrite must
        // take the ordered two-shard commit lane, and its ack must be
        // released only after both shards committed.
        client.send(EchoService::make_multi_write(0, 2, 64),
                    [&](Bytes reply) {
                        ack = std::move(reply);
                        // The partner key's commit is visible to a
                        // follow-up read routed to its owner shard.
                        client.send(
                            EchoService::make_read(2, 32, 128),
                            [&](Bytes read_reply) {
                                readback = std::move(read_reply);
                                // A key exactly on the boundary routes
                                // to the shard the boundary starts.
                                client.send(
                                    EchoService::make_write(2, 64),
                                    [&](Bytes write_reply) {
                                        boundary_ack =
                                            std::move(write_reply);
                                    });
                            });
                    });
    });
    cluster.simulator().run_until(sim::seconds(10));

    // Multiwrite ack: version 1 of key 0 on its owner shard.
    ASSERT_EQ(ack.size(), 10u);
    EXPECT_EQ(ack[0], 1);
    {
        Reader r(ByteView(ack.data() + 1, 8));
        EXPECT_EQ(r.u64(), 1u);
    }
    // Read of the partner key sees the multiwrite's version.
    EXPECT_EQ(readback, EchoService::expected_read_reply(2, 1, 128));
    // Boundary-key write executed on shard 1 bumped k2 to version 2.
    ASSERT_EQ(boundary_ack.size(), 10u);
    {
        Reader r(ByteView(boundary_ack.data() + 1, 8));
        EXPECT_EQ(r.u64(), 2u);
    }

    const auto status = cluster.front()->status();
    EXPECT_EQ(status.router_fanout, 2);
    EXPECT_EQ(status.cross_shard_commits, 1u);
    ASSERT_EQ(status.shards.size(), 2u);
    EXPECT_EQ(status.shards[0].cross_participations, 1u);
    EXPECT_EQ(status.shards[1].cross_participations, 1u);
    EXPECT_GE(status.shards[1].reads, 1u);
    EXPECT_GE(status.shards[1].writes, 2u);  // cross + boundary write
    EXPECT_EQ(status.requests, 3u);
    EXPECT_EQ(status.released, 3u);
}

// --------------------------------------------- chaos under shard faults

std::string report_summary(const bench::ChaosReport& report) {
    std::string out = "completed " + std::to_string(report.completed) +
                      "/" + std::to_string(report.issued) +
                      ", violations " + std::to_string(report.violations);
    for (const std::string& error : report.errors) out += "\n  " + error;
    out += "\nplan:\n" + report.plan_trace;
    return out;
}

// Crash shard 0's initial leader while serialized two-shard commits are
// in flight; the run must stay linearizable and complete once healed.
TEST(ShardChaos, ShardLeaderCrashDuringCrossShardCommits) {
    bench::ChaosOptions options;
    options.seed = 9;
    options.shards = 2;
    options.cross_shard_fraction = 0.4;
    options.clients = 3;
    options.requests_per_client = 30;
    // Host 0 is shard 0's replica 0 — the initial leader of the shard
    // that owns half the cross-shard commits.
    options.plan.crash(sim::milliseconds(1500), 0)
        .restart(sim::seconds(3), 0);

    const bench::ChaosReport report = bench::run_chaos(options);
    EXPECT_TRUE(report.ok()) << report_summary(report);
    EXPECT_GT(report.multiwrites_issued, 0u);
    EXPECT_GE(report.cross_shard_commits, 1u);
    EXPECT_EQ(report.router_fanout, 2);
    ASSERT_EQ(report.shards.size(), 2u);
    EXPECT_GT(report.shards[0].forwarded, 0u);
    EXPECT_GT(report.shards[1].forwarded, 0u);
    EXPECT_EQ(report.restarts, 1u);
}

// ------------------------------------------------------ S=1 byte parity

// The same workload on the unsharded TroxyCluster and on a
// ShardedTroxyCluster with shard_count = 1 must produce identical
// replies AND identical network totals: sharding off is byte-identical,
// not just equivalent.
TEST(ShardParity, SingleShardReplaysUnshardedByteIdentically) {
    constexpr int kClients = 2;
    constexpr int kRequests = 12;

    auto drive = [](auto& cluster) {
        std::vector<troxy_core::LegacyClient*> clients;
        for (int c = 0; c < kClients; ++c) {
            clients.push_back(&cluster.add_client());
        }
        auto replies = std::make_shared<std::vector<Bytes>>();
        for (int c = 0; c < kClients; ++c) {
            troxy_core::LegacyClient* client = clients[
                static_cast<std::size_t>(c)];
            auto chain = std::make_shared<std::function<void(int)>>();
            *chain = [client, c, chain, replies](int remaining) {
                if (remaining == 0) return;
                const auto key = static_cast<std::uint64_t>(c);
                Bytes request =
                    remaining % 2 == 0
                        ? EchoService::make_write(key, 64)
                        : EchoService::make_read(key, 32, 96);
                client->send(std::move(request),
                             [chain, replies, remaining](Bytes reply) {
                                 replies->push_back(std::move(reply));
                                 (*chain)(remaining - 1);
                             });
            };
            client->start([chain]() { (*chain)(kRequests); });
        }
        cluster.simulator().run_until(sim::seconds(5));
        return std::make_tuple(*replies,
                               cluster.network().messages_sent(),
                               cluster.network().bytes_sent());
    };

    bench::TroxyCluster::Params flat_params;
    flat_params.base.seed = 21;
    flat_params.base.coalesce_wire = true;
    flat_params.host.coalesce_wire = true;
    flat_params.service = []() { return std::make_unique<EchoService>(); };
    flat_params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    bench::TroxyCluster flat(flat_params);
    const auto flat_result = drive(flat);

    bench::ShardedTroxyCluster::Params sharded_params;
    sharded_params.base.seed = 21;
    sharded_params.base.coalesce_wire = true;
    sharded_params.host.coalesce_wire = true;
    sharded_params.base.shard_count = 1;
    sharded_params.service = []() {
        return std::make_unique<EchoService>();
    };
    sharded_params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    bench::ShardedTroxyCluster sharded(std::move(sharded_params));
    EXPECT_EQ(sharded.shards(), 1);
    EXPECT_EQ(sharded.front(), nullptr);
    const auto sharded_result = drive(sharded);

    EXPECT_EQ(std::get<0>(flat_result), std::get<0>(sharded_result));
    EXPECT_EQ(std::get<1>(flat_result), std::get<1>(sharded_result));
    EXPECT_EQ(std::get<2>(flat_result), std::get<2>(sharded_result));
}

}  // namespace
}  // namespace troxy
