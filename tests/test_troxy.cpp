// Unit tests for the Troxy's trusted components: fast-read cache,
// miss-rate monitor, cache wire messages, and enclave-level behaviour.
#include <gtest/gtest.h>

#include <optional>

#include "apps/echo_service.hpp"
#include "bench_support/cluster.hpp"
#include "enclave/trinx.hpp"
#include "net/client_framing.hpp"
#include "net/envelope.hpp"
#include "net/secure_channel.hpp"
#include "troxy/cache.hpp"
#include "troxy/cache_messages.hpp"
#include "troxy/enclave.hpp"

namespace troxy::troxy_core {
namespace {

enclave::EnclaveGate make_gate() {
    return enclave::EnclaveGate("test", sim::EnclaveCosts::sgx_v1(), 16);
}

CacheEntry entry_of(std::string_view request, std::string_view result) {
    CacheEntry entry;
    entry.request_digest = crypto::sha256(to_bytes(request));
    entry.result = to_bytes(result);
    return entry;
}

// ------------------------------------------------------------------- cache

TEST(FastReadCache, PutGetInvalidate) {
    auto gate = make_gate();
    FastReadCache cache(gate, 1 << 20);

    EXPECT_EQ(cache.get("k1"), nullptr);
    cache.put("k1", entry_of("req", "result"));
    const CacheEntry* entry = cache.get("k1");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->result, to_bytes("result"));

    cache.invalidate("k1");
    EXPECT_EQ(cache.get("k1"), nullptr);
    EXPECT_EQ(cache.entries(), 0u);
}

TEST(FastReadCache, PutOverwrites) {
    auto gate = make_gate();
    FastReadCache cache(gate, 1 << 20);
    cache.put("k", entry_of("r1", "old"));
    cache.put("k", entry_of("r1", "new"));
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_EQ(cache.get("k")->result, to_bytes("new"));
}

TEST(FastReadCache, LruEvictionUnderCapacity) {
    auto gate = make_gate();
    FastReadCache cache(gate, 1250);  // fits roughly two entries

    cache.put("a", entry_of("ra", std::string(400, 'x')));
    cache.put("b", entry_of("rb", std::string(400, 'y')));
    ASSERT_EQ(cache.entries(), 2u);
    // Touch "a" so "b" becomes least recently used.
    EXPECT_NE(cache.get("a"), nullptr);
    cache.put("c", entry_of("rc", std::string(400, 'z')));

    EXPECT_NE(cache.get("a"), nullptr);
    EXPECT_EQ(cache.get("b"), nullptr);  // evicted
    EXPECT_NE(cache.get("c"), nullptr);
    EXPECT_LE(cache.bytes_used(), 1250u);
}

TEST(FastReadCache, ClearDropsEverythingAndReleasesEpc) {
    auto gate = make_gate();
    FastReadCache cache(gate, 1 << 20);
    cache.put("a", entry_of("r", "v"));
    cache.put("b", entry_of("r", "v"));
    const std::size_t allocated = gate.allocated_bytes();
    EXPECT_GT(allocated, 0u);
    cache.clear();
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(gate.allocated_bytes(), 0u);
}

TEST(FastReadCache, EpcAccountingTracksUsage) {
    auto gate = make_gate();
    FastReadCache cache(gate, 1 << 20);
    cache.put("k", entry_of("r", std::string(1000, 'v')));
    EXPECT_EQ(gate.allocated_bytes(), cache.bytes_used());
    cache.invalidate("k");
    EXPECT_EQ(gate.allocated_bytes(), 0u);
}

// ----------------------------------------------------------------- monitor

TEST(MissRateMonitor, StartsInFastMode) {
    MissRateMonitor monitor({});
    EXPECT_TRUE(monitor.fast_path_enabled());
}

TEST(MissRateMonitor, SwitchesOffUnderSustainedMisses) {
    MissRateMonitor::Options options;
    options.miss_threshold = 0.5;
    options.window = 32;
    MissRateMonitor monitor(options);

    for (int i = 0; i < 64 && monitor.fast_path_enabled(); ++i) {
        monitor.record(true);
    }
    EXPECT_FALSE(monitor.fast_path_enabled());
    EXPECT_EQ(monitor.mode_switches(), 1u);
}

TEST(MissRateMonitor, StaysOnUnderLowMissRate) {
    MissRateMonitor::Options options;
    options.miss_threshold = 0.5;
    options.window = 32;
    MissRateMonitor monitor(options);

    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        monitor.record(rng.next_below(100) < 10);  // 10% misses
    }
    EXPECT_TRUE(monitor.fast_path_enabled());
}

TEST(MissRateMonitor, ProbesAgainAfterCooldown) {
    MissRateMonitor::Options options;
    options.miss_threshold = 0.5;
    options.window = 16;
    options.cooldown = 10;
    MissRateMonitor monitor(options);

    for (int i = 0; i < 64 && monitor.fast_path_enabled(); ++i) {
        monitor.record(true);
    }
    ASSERT_FALSE(monitor.fast_path_enabled());
    for (int i = 0; i < 10; ++i) monitor.record_total_order();
    EXPECT_TRUE(monitor.fast_path_enabled());
    EXPECT_EQ(monitor.mode_switches(), 2u);
}

TEST(MissRateMonitor, NonAdaptiveNeverSwitches) {
    MissRateMonitor::Options options;
    options.adaptive = false;
    MissRateMonitor monitor(options);
    for (int i = 0; i < 200; ++i) monitor.record(true);
    EXPECT_TRUE(monitor.fast_path_enabled());
    EXPECT_EQ(monitor.mode_switches(), 0u);
}

// ---------------------------------------------------------- cache messages

TEST(CacheMessages, QueryRoundTrip) {
    CacheQuery query;
    query.requester = 42;
    query.query_id = 7;
    query.state_key = "k9";
    query.request_digest = crypto::sha256(to_bytes("req"));
    query.cert.fill(0xaa);

    const Bytes wire = encode_cache_message(CacheMessage(query));
    const auto decoded = decode_cache_message(wire);
    ASSERT_TRUE(decoded.has_value());
    const auto* out = std::get_if<CacheQuery>(&*decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->requester, 42u);
    EXPECT_EQ(out->query_id, 7u);
    EXPECT_EQ(out->state_key, "k9");
    EXPECT_EQ(out->request_digest, query.request_digest);
}

TEST(CacheMessages, ResponseRoundTrip) {
    CacheResponse response;
    response.responder = 3;
    response.responder_replica = 1;
    response.query_id = 9;
    response.has_entry = true;
    response.result_digest = crypto::sha256(to_bytes("result"));

    const Bytes wire = encode_cache_message(CacheMessage(response));
    const auto decoded = decode_cache_message(wire);
    ASSERT_TRUE(decoded.has_value());
    const auto* out = std::get_if<CacheResponse>(&*decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_TRUE(out->has_entry);
    EXPECT_EQ(out->result_digest, response.result_digest);
}

TEST(CacheMessages, MalformedRejected) {
    EXPECT_FALSE(decode_cache_message(Bytes{}).has_value());
    EXPECT_FALSE(decode_cache_message(Bytes{9, 1, 2}).has_value());
    Bytes truncated =
        encode_cache_message(CacheMessage(CacheQuery{}));
    truncated.resize(truncated.size() / 2);
    EXPECT_FALSE(decode_cache_message(truncated).has_value());
}

// ------------------------------------------------- enclave-level behaviour

bench::TroxyCluster::Params cluster_params(std::uint64_t seed) {
    bench::TroxyCluster::Params params;
    params.base.seed = seed;
    params.service = []() { return std::make_unique<apps::EchoService>(); };
    params.classifier = [](ByteView request) {
        return apps::EchoService().classify(request);
    };
    return params;
}

TEST(TroxyEnclave, EcallBudgetRespected) {
    // Drive a full workload and verify the interface stayed within the
    // paper's 16-ecall budget (ours is 10).
    bench::TroxyCluster cluster(cluster_params(31));
    auto& client = cluster.add_client(0);
    int done = 0;
    client.start([&]() {
        client.send(apps::EchoService::make_write(1, 64), [&](Bytes) {
            client.send(apps::EchoService::make_read(1, 32, 64),
                        [&](Bytes) { ++done; });
        });
    });
    cluster.simulator().run_until(sim::seconds(5));
    ASSERT_EQ(done, 1);
    for (int r = 0; r < cluster.n(); ++r) {
        EXPECT_LE(cluster.host(r).troxy().gate().distinct_ecalls(), 16u);
        EXPECT_GT(cluster.host(r).troxy().gate().transitions(), 0u);
    }
}

TEST(TroxyEnclave, CtroxyChargesJniNotSgxCosts) {
    bench::TroxyCluster::Params params = cluster_params(32);
    params.ctroxy = true;
    bench::TroxyCluster cluster(std::move(params));
    auto& client = cluster.add_client(0);
    bool done = false;
    client.start([&]() {
        client.send(apps::EchoService::make_write(1, 64),
                    [&](Bytes) { done = true; });
    });
    cluster.simulator().run_until(sim::seconds(5));
    ASSERT_TRUE(done);
    // ctroxy pays JNI call costs, strictly below the SGX transition cost,
    // and no EPC paging.
    const auto& costs = cluster.host(0).troxy().gate().costs();
    EXPECT_EQ(costs.ecall_transition_ns,
              sim::EnclaveCosts::jni_only().ecall_transition_ns);
    EXPECT_LT(costs.ecall_transition_ns,
              sim::EnclaveCosts::sgx_v1().ecall_transition_ns);
    EXPECT_EQ(costs.epc_limit_bytes, 0u);
}

TEST(TroxyEnclave, RestartLosesCacheButStaysSafe) {
    // §IV-B rollback attack: rebooting the enclave empties the cache;
    // subsequent reads are ordered and still correct.
    bench::TroxyCluster cluster(cluster_params(33));
    auto& client = cluster.add_client(0);

    int phase = 0;
    Bytes last_reply;
    client.start([&]() {
        client.send(apps::EchoService::make_write(1, 64), [&](Bytes) {
            client.send(apps::EchoService::make_read(1, 32, 128),
                        [&](Bytes) { phase = 1; });
        });
    });
    cluster.simulator().run_until(sim::seconds(5));
    ASSERT_EQ(phase, 1);

    cluster.host(0).troxy().restart();
    EXPECT_EQ(cluster.host(0).troxy().status().cache_entries, 0u);

    // The client's channel died with the restart; it reconnects via its
    // ordinary failover and the read still returns the correct value.
    client.send(apps::EchoService::make_read(1, 32, 128), [&](Bytes reply) {
        last_reply = std::move(reply);
        phase = 2;
    });
    cluster.simulator().run_until(sim::seconds(20));
    ASSERT_EQ(phase, 2);
    EXPECT_EQ(last_reply,
              apps::EchoService::expected_read_reply(1, 1, 128));
}

TEST(TroxyEnclave, StatusReportsProgress) {
    bench::TroxyCluster cluster(cluster_params(34));
    auto& client = cluster.add_client(0);
    int done = 0;
    std::function<void(int)> loop;
    loop = [&](int remaining) {
        if (remaining == 0) return;
        client.send(apps::EchoService::make_write(1, 64),
                    [&, remaining](Bytes) {
                        ++done;
                        loop(remaining - 1);
                    });
    };
    client.start([&]() { loop(5); });
    cluster.simulator().run_until(sim::seconds(5));
    ASSERT_EQ(done, 5);
    const auto status = cluster.host(0).troxy().status();
    EXPECT_EQ(status.ordered_requests, 5u);
    EXPECT_EQ(status.completed_votes, 5u);
    EXPECT_EQ(status.rejected_replies, 0u);
}

// ---------------------------------------------------------- batched voting

namespace {

/// Direct enclave rig: one Troxy enclave (replica 0) with a connected
/// legacy-client channel, plus standalone TrinX instances for the peer
/// replicas so tests can forge authenticated replies.
struct VotingRig {
    static constexpr sim::NodeId kHostNode = 1;
    static constexpr sim::NodeId kClientNode = 1000;

    hybster::Config config;
    sim::CostProfile profile = sim::CostProfile::native();
    std::shared_ptr<enclave::TrinX> local_trinx;
    std::vector<std::unique_ptr<enclave::TrinX>> peer_trinx;
    crypto::X25519Keypair identity =
        crypto::x25519_keypair_from_seed(to_bytes("voting-rig-server"));
    std::unique_ptr<TroxyEnclave> enclave;
    std::optional<net::SecureChannelClient> channel;
    enclave::CostMeter meter;

    VotingRig() {
        config.f = 1;
        for (int i = 0; i < 3; ++i) {
            config.replicas.push_back(static_cast<sim::NodeId>(i + 1));
        }
        const Bytes group_key = to_bytes("voting-rig-group-key");
        local_trinx = std::make_shared<enclave::TrinX>(0, group_key);
        for (std::uint32_t r = 1; r < 3; ++r) {
            peer_trinx.push_back(
                std::make_unique<enclave::TrinX>(r, group_key));
        }
        enclave = std::make_unique<TroxyEnclave>(
            kHostNode, 0, config, local_trinx, identity,
            [](ByteView request) {
                return apps::EchoService().classify(request);
            },
            profile, TroxyOptions{}, /*seed=*/7);

        channel.emplace(identity.public_key, to_bytes("client-seed"));
        auto actions = enclave->accept_connection(meter, kClientNode,
                                                  channel->client_hello());
        const auto hello = unframe(actions);
        EXPECT_TRUE(channel->finish(hello));
    }

    /// Extracts the client-frame payload of the single queued send.
    Bytes unframe(const TroxyActions& actions) {
        EXPECT_EQ(actions.sends.size(), 1u);
        const auto unwrapped = net::unwrap(actions.sends[0].second);
        EXPECT_TRUE(unwrapped.has_value());
        EXPECT_EQ(unwrapped->first, net::Channel::Client);
        const auto frame = net::unframe_client(unwrapped->second);
        EXPECT_TRUE(frame.has_value());
        return frame->second;
    }

    /// Sends one write through the channel; returns the ordered request.
    hybster::Request order_write(std::uint64_t key) {
        auto actions = enclave->handle_request(
            meter, kClientNode,
            channel->protect(apps::EchoService::make_write(key, 16)));
        EXPECT_EQ(actions.to_order.size(), 1u);
        return std::move(actions.to_order[0]);
    }

    /// Forges replica `r`'s authenticated reply for `request`.
    hybster::Reply make_reply(std::uint32_t r,
                              const hybster::Request& request) {
        enclave::CostedCrypto crypto_ops(profile, meter);
        hybster::Reply reply;
        reply.request_id = request.id;
        reply.request_digest = request.digest_with(crypto_ops);
        reply.result = to_bytes("ack-" + std::to_string(request.id.number));
        reply.replica = r;
        enclave::TrinX& signer =
            r == 0 ? *local_trinx : *peer_trinx[r - 1];
        reply.cert =
            signer.certify_independent(crypto_ops, reply.certified_view());
        return reply;
    }
};

}  // namespace

TEST(TroxyEnclave, BatchedVotingOneTransitionPerBurst) {
    VotingRig rig;
    std::vector<hybster::Request> ordered;
    for (std::uint64_t key = 0; key < 4; ++key) {
        ordered.push_back(rig.order_write(key));
    }

    // Eight replies (two sources x four requests) enter in ONE batch.
    std::vector<hybster::Reply> batch;
    for (const std::uint32_t r : {0u, 1u}) {
        for (const hybster::Request& request : ordered) {
            batch.push_back(rig.make_reply(r, request));
        }
    }
    const std::uint64_t before = rig.enclave->gate().transitions();
    auto actions = rig.enclave->handle_replies(rig.meter, std::move(batch));
    EXPECT_EQ(rig.enclave->gate().transitions(), before + 1);

    const auto status = rig.enclave->status();
    EXPECT_EQ(status.completed_votes, 4u);
    EXPECT_EQ(status.rejected_replies, 0u);
    EXPECT_EQ(status.reply_batches, 1u);
    EXPECT_EQ(status.batched_replies, 8u);
    EXPECT_EQ(actions.completed_votes.size(), 4u);

    // All four client replies left the enclave as ONE coalesced record,
    // and the channel delivers them in request order.
    const Bytes record = rig.unframe(actions);
    const auto replies = rig.channel->unprotect(record);
    ASSERT_EQ(replies.size(), 4u);
    for (std::size_t i = 0; i < replies.size(); ++i) {
        EXPECT_EQ(replies[i],
                  to_bytes("ack-" + std::to_string(ordered[i].id.number)));
    }
}

TEST(TroxyEnclave, BatchOfOneMatchesPerReplyEcall) {
    // A voter batch of one must be byte- and count-identical to the
    // unbatched handle_reply flow: one transition, one single-message
    // record the client channel decodes the same way.
    VotingRig rig;
    const hybster::Request request = rig.order_write(1);

    std::vector<hybster::Reply> batch;
    batch.push_back(rig.make_reply(0, request));
    auto first = rig.enclave->handle_replies(rig.meter, std::move(batch));
    EXPECT_TRUE(first.sends.empty());  // quorum not yet reached

    const std::uint64_t before = rig.enclave->gate().transitions();
    auto second =
        rig.enclave->handle_reply(rig.meter, rig.make_reply(1, request));
    EXPECT_EQ(rig.enclave->gate().transitions(), before + 1);
    const auto replies = rig.channel->unprotect(rig.unframe(second));
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0], to_bytes("ack-" +
                                   std::to_string(request.id.number)));
}

TEST(TroxyEnclave, ByzantineReplyDoesNotPoisonBatch) {
    VotingRig rig;
    std::vector<hybster::Request> ordered;
    for (std::uint64_t key = 0; key < 4; ++key) {
        ordered.push_back(rig.order_write(key));
    }

    // Replica 1's reply for the FIRST request carries a corrupted
    // certificate; every other reply in the batch is honest. Replica 2
    // covers the gap for that request.
    std::vector<hybster::Reply> batch;
    for (const hybster::Request& request : ordered) {
        batch.push_back(rig.make_reply(0, request));
    }
    for (const hybster::Request& request : ordered) {
        hybster::Reply reply = rig.make_reply(1, request);
        if (request.id.number == ordered[0].id.number) {
            reply.cert[0] ^= 1;
        }
        batch.push_back(std::move(reply));
    }
    batch.push_back(rig.make_reply(2, ordered[0]));

    auto actions = rig.enclave->handle_replies(rig.meter, std::move(batch));
    const auto status = rig.enclave->status();
    // The bad certificate rejected exactly one reply and nothing else:
    // all four votes still completed within the same transition.
    EXPECT_EQ(status.rejected_replies, 1u);
    EXPECT_EQ(status.completed_votes, 4u);
    EXPECT_EQ(actions.completed_votes.size(), 4u);
    const auto replies = rig.channel->unprotect(rig.unframe(actions));
    EXPECT_EQ(replies.size(), 4u);
}

}  // namespace
}  // namespace troxy::troxy_core
