// Unit tests for the Troxy's trusted components: fast-read cache,
// miss-rate monitor, cache wire messages, and enclave-level behaviour.
#include <gtest/gtest.h>

#include <optional>

#include "apps/echo_service.hpp"
#include "apps/kv_service.hpp"
#include "bench_support/cluster.hpp"
#include "enclave/trinx.hpp"
#include "net/client_framing.hpp"
#include "net/envelope.hpp"
#include "net/secure_channel.hpp"
#include "troxy/cache.hpp"
#include "troxy/cache_messages.hpp"
#include "troxy/enclave.hpp"

namespace troxy::troxy_core {
namespace {

enclave::EnclaveGate make_gate() {
    return enclave::EnclaveGate("test", sim::EnclaveCosts::sgx_v1(), 16);
}

CacheEntry entry_of(std::string_view request, std::string_view result) {
    CacheEntry entry;
    entry.request_digest = crypto::sha256(to_bytes(request));
    entry.result = to_bytes(result);
    return entry;
}

// ------------------------------------------------------------------- cache

TEST(FastReadCache, PutGetInvalidate) {
    auto gate = make_gate();
    FastReadCache cache(gate, 1 << 20);

    EXPECT_EQ(cache.get("k1"), nullptr);
    cache.put("k1", entry_of("req", "result"));
    const CacheEntry* entry = cache.get("k1");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->result, to_bytes("result"));

    cache.invalidate("k1");
    EXPECT_EQ(cache.get("k1"), nullptr);
    EXPECT_EQ(cache.entries(), 0u);
}

TEST(FastReadCache, PutOverwrites) {
    auto gate = make_gate();
    FastReadCache cache(gate, 1 << 20);
    cache.put("k", entry_of("r1", "old"));
    cache.put("k", entry_of("r1", "new"));
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_EQ(cache.get("k")->result, to_bytes("new"));
}

TEST(FastReadCache, LruEvictionUnderCapacity) {
    auto gate = make_gate();
    FastReadCache cache(gate, 1250);  // fits roughly two entries

    cache.put("a", entry_of("ra", std::string(400, 'x')));
    cache.put("b", entry_of("rb", std::string(400, 'y')));
    ASSERT_EQ(cache.entries(), 2u);
    // Touch "a" so "b" becomes least recently used.
    EXPECT_NE(cache.get("a"), nullptr);
    cache.put("c", entry_of("rc", std::string(400, 'z')));

    EXPECT_NE(cache.get("a"), nullptr);
    EXPECT_EQ(cache.get("b"), nullptr);  // evicted
    EXPECT_NE(cache.get("c"), nullptr);
    EXPECT_LE(cache.bytes_used(), 1250u);
}

TEST(FastReadCache, ClearDropsEverythingAndReleasesEpc) {
    auto gate = make_gate();
    FastReadCache cache(gate, 1 << 20);
    cache.put("a", entry_of("r", "v"));
    cache.put("b", entry_of("r", "v"));
    const std::size_t allocated = gate.allocated_bytes();
    EXPECT_GT(allocated, 0u);
    cache.clear();
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(gate.allocated_bytes(), 0u);
}

TEST(FastReadCache, EpcAccountingTracksUsage) {
    auto gate = make_gate();
    FastReadCache cache(gate, 1 << 20);
    cache.put("k", entry_of("r", std::string(1000, 'v')));
    EXPECT_EQ(gate.allocated_bytes(), cache.bytes_used());
    cache.invalidate("k");
    EXPECT_EQ(gate.allocated_bytes(), 0u);
}

TEST(FastReadCache, FootprintShrinksOnSmallerOverwrite) {
    // Overwriting an entry with a smaller result must return the size
    // difference to the EPC accounting, not leak the old footprint.
    auto gate = make_gate();
    FastReadCache cache(gate, 1 << 20);
    cache.put("k", entry_of("r", std::string(1000, 'a')));
    const std::size_t big = cache.bytes_used();
    EXPECT_EQ(gate.allocated_bytes(), big);
    cache.put("k", entry_of("r", std::string(10, 'b')));
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_LT(cache.bytes_used(), big);
    EXPECT_EQ(gate.allocated_bytes(), cache.bytes_used());
}

TEST(FastReadCache, FootprintMatchesGateAfterEviction) {
    auto gate = make_gate();
    FastReadCache cache(gate, 1250);  // fits roughly two entries
    cache.put("a", entry_of("ra", std::string(400, 'x')));
    cache.put("b", entry_of("rb", std::string(400, 'y')));
    cache.put("c", entry_of("rc", std::string(400, 'z')));  // evicts "a"
    EXPECT_EQ(cache.get("a"), nullptr);
    EXPECT_LE(cache.bytes_used(), 1250u);
    EXPECT_EQ(gate.allocated_bytes(), cache.bytes_used());
}

// ----------------------------------------------------------------- monitor

TEST(MissRateMonitor, StartsInFastMode) {
    MissRateMonitor monitor({});
    EXPECT_TRUE(monitor.fast_path_enabled());
}

TEST(MissRateMonitor, SwitchesOffUnderSustainedMisses) {
    MissRateMonitor::Options options;
    options.miss_threshold = 0.5;
    options.window = 32;
    MissRateMonitor monitor(options);

    for (int i = 0; i < 64 && monitor.fast_path_enabled(); ++i) {
        monitor.record(true);
    }
    EXPECT_FALSE(monitor.fast_path_enabled());
    EXPECT_EQ(monitor.mode_switches(), 1u);
}

TEST(MissRateMonitor, StaysOnUnderLowMissRate) {
    MissRateMonitor::Options options;
    options.miss_threshold = 0.5;
    options.window = 32;
    MissRateMonitor monitor(options);

    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        monitor.record(rng.next_below(100) < 10);  // 10% misses
    }
    EXPECT_TRUE(monitor.fast_path_enabled());
}

TEST(MissRateMonitor, ProbesAgainAfterCooldown) {
    MissRateMonitor::Options options;
    options.miss_threshold = 0.5;
    options.window = 16;
    options.cooldown = 10;
    MissRateMonitor monitor(options);

    for (int i = 0; i < 64 && monitor.fast_path_enabled(); ++i) {
        monitor.record(true);
    }
    ASSERT_FALSE(monitor.fast_path_enabled());
    for (int i = 0; i < 10; ++i) monitor.record_total_order();
    EXPECT_TRUE(monitor.fast_path_enabled());
    EXPECT_EQ(monitor.mode_switches(), 2u);
}

TEST(MissRateMonitor, NonAdaptiveNeverSwitches) {
    MissRateMonitor::Options options;
    options.adaptive = false;
    MissRateMonitor monitor(options);
    for (int i = 0; i < 200; ++i) monitor.record(true);
    EXPECT_TRUE(monitor.fast_path_enabled());
    EXPECT_EQ(monitor.mode_switches(), 0u);
}

// ---------------------------------------------------------- cache messages

TEST(CacheMessages, QueryRoundTrip) {
    CacheQuery query;
    query.requester = 42;
    query.query_id = 7;
    query.state_key = "k9";
    query.request_digest = crypto::sha256(to_bytes("req"));
    query.cert.fill(0xaa);

    const Bytes wire = encode_cache_message(CacheMessage(query));
    const auto decoded = decode_cache_message(wire);
    ASSERT_TRUE(decoded.has_value());
    const auto* out = std::get_if<CacheQuery>(&*decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->requester, 42u);
    EXPECT_EQ(out->query_id, 7u);
    EXPECT_EQ(out->state_key, "k9");
    EXPECT_EQ(out->request_digest, query.request_digest);
}

TEST(CacheMessages, ResponseRoundTrip) {
    CacheResponse response;
    response.responder = 3;
    response.responder_replica = 1;
    response.query_id = 9;
    response.has_entry = true;
    response.result_digest = crypto::sha256(to_bytes("result"));

    const Bytes wire = encode_cache_message(CacheMessage(response));
    const auto decoded = decode_cache_message(wire);
    ASSERT_TRUE(decoded.has_value());
    const auto* out = std::get_if<CacheResponse>(&*decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_TRUE(out->has_entry);
    EXPECT_EQ(out->result_digest, response.result_digest);
}

TEST(CacheMessages, MalformedRejected) {
    EXPECT_FALSE(decode_cache_message(Bytes{}).has_value());
    EXPECT_FALSE(decode_cache_message(Bytes{9, 1, 2}).has_value());
    Bytes truncated =
        encode_cache_message(CacheMessage(CacheQuery{}));
    truncated.resize(truncated.size() / 2);
    EXPECT_FALSE(decode_cache_message(truncated).has_value());
}

// ------------------------------------------------- enclave-level behaviour

bench::TroxyCluster::Params cluster_params(std::uint64_t seed) {
    bench::TroxyCluster::Params params;
    params.base.seed = seed;
    params.service = []() { return std::make_unique<apps::EchoService>(); };
    params.classifier = [](ByteView request) {
        return apps::EchoService().classify(request);
    };
    return params;
}

TEST(TroxyEnclave, EcallBudgetRespected) {
    // Drive a full workload and verify the interface stayed within the
    // paper's 16-ecall budget (ours is 10).
    bench::TroxyCluster cluster(cluster_params(31));
    auto& client = cluster.add_client(0);
    int done = 0;
    client.start([&]() {
        client.send(apps::EchoService::make_write(1, 64), [&](Bytes) {
            client.send(apps::EchoService::make_read(1, 32, 64),
                        [&](Bytes) { ++done; });
        });
    });
    cluster.simulator().run_until(sim::seconds(5));
    ASSERT_EQ(done, 1);
    for (int r = 0; r < cluster.n(); ++r) {
        EXPECT_LE(cluster.host(r).troxy().gate().distinct_ecalls(), 16u);
        EXPECT_GT(cluster.host(r).troxy().gate().transitions(), 0u);
    }
}

TEST(TroxyEnclave, CtroxyChargesJniNotSgxCosts) {
    bench::TroxyCluster::Params params = cluster_params(32);
    params.ctroxy = true;
    bench::TroxyCluster cluster(std::move(params));
    auto& client = cluster.add_client(0);
    bool done = false;
    client.start([&]() {
        client.send(apps::EchoService::make_write(1, 64),
                    [&](Bytes) { done = true; });
    });
    cluster.simulator().run_until(sim::seconds(5));
    ASSERT_TRUE(done);
    // ctroxy pays JNI call costs, strictly below the SGX transition cost,
    // and no EPC paging.
    const auto& costs = cluster.host(0).troxy().gate().costs();
    EXPECT_EQ(costs.ecall_transition_ns,
              sim::EnclaveCosts::jni_only().ecall_transition_ns);
    EXPECT_LT(costs.ecall_transition_ns,
              sim::EnclaveCosts::sgx_v1().ecall_transition_ns);
    EXPECT_EQ(costs.epc_limit_bytes, 0u);
}

TEST(TroxyEnclave, RestartLosesCacheButStaysSafe) {
    // §IV-B rollback attack: rebooting the enclave empties the cache;
    // subsequent reads are ordered and still correct.
    bench::TroxyCluster cluster(cluster_params(33));
    auto& client = cluster.add_client(0);

    int phase = 0;
    Bytes last_reply;
    client.start([&]() {
        client.send(apps::EchoService::make_write(1, 64), [&](Bytes) {
            client.send(apps::EchoService::make_read(1, 32, 128),
                        [&](Bytes) { phase = 1; });
        });
    });
    cluster.simulator().run_until(sim::seconds(5));
    ASSERT_EQ(phase, 1);

    cluster.host(0).troxy().restart();
    EXPECT_EQ(cluster.host(0).troxy().status().cache_entries, 0u);

    // The client's channel died with the restart; it reconnects via its
    // ordinary failover and the read still returns the correct value.
    client.send(apps::EchoService::make_read(1, 32, 128), [&](Bytes reply) {
        last_reply = std::move(reply);
        phase = 2;
    });
    cluster.simulator().run_until(sim::seconds(20));
    ASSERT_EQ(phase, 2);
    EXPECT_EQ(last_reply,
              apps::EchoService::expected_read_reply(1, 1, 128));
}

TEST(TroxyEnclave, StatusReportsProgress) {
    bench::TroxyCluster cluster(cluster_params(34));
    auto& client = cluster.add_client(0);
    int done = 0;
    std::function<void(int)> loop;
    loop = [&](int remaining) {
        if (remaining == 0) return;
        client.send(apps::EchoService::make_write(1, 64),
                    [&, remaining](Bytes) {
                        ++done;
                        loop(remaining - 1);
                    });
    };
    client.start([&]() { loop(5); });
    cluster.simulator().run_until(sim::seconds(5));
    ASSERT_EQ(done, 5);
    const auto status = cluster.host(0).troxy().status();
    EXPECT_EQ(status.ordered_requests, 5u);
    EXPECT_EQ(status.completed_votes, 5u);
    EXPECT_EQ(status.rejected_replies, 0u);
}

// ---------------------------------------------------------- batched voting

namespace {

/// Direct enclave rig: one Troxy enclave (replica 0) with a connected
/// legacy-client channel, plus standalone TrinX instances for the peer
/// replicas so tests can forge authenticated replies.
struct VotingRig {
    static constexpr sim::NodeId kHostNode = 1;
    static constexpr sim::NodeId kClientNode = 1000;

    hybster::Config config;
    sim::CostProfile profile = sim::CostProfile::native();
    std::shared_ptr<enclave::TrinX> local_trinx;
    std::vector<std::unique_ptr<enclave::TrinX>> peer_trinx;
    crypto::X25519Keypair identity =
        crypto::x25519_keypair_from_seed(to_bytes("voting-rig-server"));
    std::unique_ptr<TroxyEnclave> enclave;
    std::optional<net::SecureChannelClient> channel;
    enclave::CostMeter meter;

    explicit VotingRig(Classifier classifier = [](ByteView request) {
        return apps::EchoService().classify(request);
    }) {
        config.f = 1;
        for (int i = 0; i < 3; ++i) {
            config.replicas.push_back(static_cast<sim::NodeId>(i + 1));
        }
        const Bytes group_key = to_bytes("voting-rig-group-key");
        local_trinx = std::make_shared<enclave::TrinX>(0, group_key);
        for (std::uint32_t r = 1; r < 3; ++r) {
            peer_trinx.push_back(
                std::make_unique<enclave::TrinX>(r, group_key));
        }
        enclave = std::make_unique<TroxyEnclave>(
            kHostNode, 0, config, local_trinx, identity,
            std::move(classifier), profile, TroxyOptions{}, /*seed=*/7);

        channel.emplace(identity.public_key, to_bytes("client-seed"));
        auto actions = enclave->accept_connection(meter, kClientNode,
                                                  channel->client_hello());
        const auto hello = unframe(actions);
        EXPECT_TRUE(channel->finish(hello));
    }

    /// Extracts the client-frame payload of the single queued send.
    Bytes unframe(const TroxyActions& actions) {
        EXPECT_EQ(actions.sends.size(), 1u);
        const auto unwrapped = net::unwrap(actions.sends[0].second);
        EXPECT_TRUE(unwrapped.has_value());
        EXPECT_EQ(unwrapped->first, net::Channel::Client);
        const auto frame = net::unframe_client(unwrapped->second);
        EXPECT_TRUE(frame.has_value());
        return frame->second;
    }

    /// Sends one write through the channel; returns the ordered request.
    hybster::Request order_write(std::uint64_t key) {
        auto actions = enclave->handle_request(
            meter, kClientNode,
            channel->protect(apps::EchoService::make_write(key, 16)));
        EXPECT_EQ(actions.to_order.size(), 1u);
        return std::move(actions.to_order[0]);
    }

    /// Forges replica `r`'s authenticated reply for `request`.
    hybster::Reply make_reply(std::uint32_t r,
                              const hybster::Request& request) {
        enclave::CostedCrypto crypto_ops(profile, meter);
        hybster::Reply reply;
        reply.request_id = request.id;
        reply.request_digest = request.digest_with(crypto_ops);
        reply.result = to_bytes("ack-" + std::to_string(request.id.number));
        reply.replica = r;
        enclave::TrinX& signer =
            r == 0 ? *local_trinx : *peer_trinx[r - 1];
        reply.cert =
            signer.certify_independent(crypto_ops, reply.certified_view());
        return reply;
    }
};

}  // namespace

TEST(TroxyEnclave, BatchedVotingOneTransitionPerBurst) {
    VotingRig rig;
    std::vector<hybster::Request> ordered;
    for (std::uint64_t key = 0; key < 4; ++key) {
        ordered.push_back(rig.order_write(key));
    }

    // Eight replies (two sources x four requests) enter in ONE batch.
    std::vector<hybster::Reply> batch;
    for (const std::uint32_t r : {0u, 1u}) {
        for (const hybster::Request& request : ordered) {
            batch.push_back(rig.make_reply(r, request));
        }
    }
    const std::uint64_t before = rig.enclave->gate().transitions();
    auto actions = rig.enclave->handle_replies(rig.meter, std::move(batch));
    EXPECT_EQ(rig.enclave->gate().transitions(), before + 1);

    const auto status = rig.enclave->status();
    EXPECT_EQ(status.completed_votes, 4u);
    EXPECT_EQ(status.rejected_replies, 0u);
    EXPECT_EQ(status.reply_batches, 1u);
    EXPECT_EQ(status.batched_replies, 8u);
    EXPECT_EQ(actions.completed_votes.size(), 4u);

    // All four client replies left the enclave as ONE coalesced record,
    // and the channel delivers them in request order.
    const Bytes record = rig.unframe(actions);
    const auto replies = rig.channel->unprotect(record);
    ASSERT_EQ(replies.size(), 4u);
    for (std::size_t i = 0; i < replies.size(); ++i) {
        EXPECT_EQ(replies[i],
                  to_bytes("ack-" + std::to_string(ordered[i].id.number)));
    }
}

TEST(TroxyEnclave, BatchOfOneMatchesPerReplyEcall) {
    // A voter batch of one must be byte- and count-identical to the
    // unbatched handle_reply flow: one transition, one single-message
    // record the client channel decodes the same way.
    VotingRig rig;
    const hybster::Request request = rig.order_write(1);

    std::vector<hybster::Reply> batch;
    batch.push_back(rig.make_reply(0, request));
    auto first = rig.enclave->handle_replies(rig.meter, std::move(batch));
    EXPECT_TRUE(first.sends.empty());  // quorum not yet reached

    const std::uint64_t before = rig.enclave->gate().transitions();
    auto second =
        rig.enclave->handle_reply(rig.meter, rig.make_reply(1, request));
    EXPECT_EQ(rig.enclave->gate().transitions(), before + 1);
    const auto replies = rig.channel->unprotect(rig.unframe(second));
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0], to_bytes("ack-" +
                                   std::to_string(request.id.number)));
}

TEST(TroxyEnclave, ByzantineReplyDoesNotPoisonBatch) {
    VotingRig rig;
    std::vector<hybster::Request> ordered;
    for (std::uint64_t key = 0; key < 4; ++key) {
        ordered.push_back(rig.order_write(key));
    }

    // Replica 1's reply for the FIRST request carries a corrupted
    // certificate; every other reply in the batch is honest. Replica 2
    // covers the gap for that request.
    std::vector<hybster::Reply> batch;
    for (const hybster::Request& request : ordered) {
        batch.push_back(rig.make_reply(0, request));
    }
    for (const hybster::Request& request : ordered) {
        hybster::Reply reply = rig.make_reply(1, request);
        if (request.id.number == ordered[0].id.number) {
            reply.cert[0] ^= 1;
        }
        batch.push_back(std::move(reply));
    }
    batch.push_back(rig.make_reply(2, ordered[0]));

    auto actions = rig.enclave->handle_replies(rig.meter, std::move(batch));
    const auto status = rig.enclave->status();
    // The bad certificate rejected exactly one reply and nothing else:
    // all four votes still completed within the same transition.
    EXPECT_EQ(status.rejected_replies, 1u);
    EXPECT_EQ(status.completed_votes, 4u);
    EXPECT_EQ(actions.completed_votes.size(), 4u);
    const auto replies = rig.channel->unprotect(rig.unframe(actions));
    EXPECT_EQ(replies.size(), 4u);
}

// ------------------------------------------------------ batched fast reads

namespace {

/// Two full enclaves — the contact (replica 0) with a connected legacy
/// client channel and one remote (replica 1) — wired back-to-back so
/// tests can drive the whole fast-read protocol without a simulator.
/// f = 1 over two replicas, so every fast read awaits exactly the one
/// remote and the query routing is deterministic.
struct FastReadRig {
    static constexpr sim::NodeId kContactNode = 1;
    static constexpr sim::NodeId kRemoteNode = 2;
    static constexpr sim::NodeId kClientNode = 1000;

    hybster::Config config;
    sim::CostProfile profile = sim::CostProfile::native();
    std::shared_ptr<enclave::TrinX> contact_trinx;
    std::shared_ptr<enclave::TrinX> remote_trinx;
    crypto::X25519Keypair identity =
        crypto::x25519_keypair_from_seed(to_bytes("fastread-rig-server"));
    std::unique_ptr<TroxyEnclave> contact;
    std::unique_ptr<TroxyEnclave> remote;
    std::optional<net::SecureChannelClient> channel;
    enclave::CostMeter meter;
    std::uint64_t next_number = 1;

    FastReadRig() {
        config.f = 1;
        config.replicas = {kContactNode, kRemoteNode};
        const Bytes group_key = to_bytes("fastread-rig-group-key");
        contact_trinx = std::make_shared<enclave::TrinX>(0, group_key);
        remote_trinx = std::make_shared<enclave::TrinX>(1, group_key);
        const Classifier classifier = [](ByteView request) {
            return apps::EchoService().classify(request);
        };
        contact = std::make_unique<TroxyEnclave>(
            kContactNode, 0, config, contact_trinx, identity, classifier,
            profile, TroxyOptions{}, /*seed=*/11);
        remote = std::make_unique<TroxyEnclave>(
            kRemoteNode, 1, config, remote_trinx,
            crypto::x25519_keypair_from_seed(to_bytes("fastread-rig-remote")),
            classifier, profile, TroxyOptions{}, /*seed=*/12);

        channel.emplace(identity.public_key, to_bytes("client-seed"));
        auto actions = contact->accept_connection(meter, kClientNode,
                                                  channel->client_hello());
        EXPECT_TRUE(channel->finish(unframe(actions)));
    }

    /// The ordered read request whose execution fills the caches.
    hybster::Request ordered_read(std::uint64_t key) {
        hybster::Request request;
        request.id.client = kContactNode;
        request.id.number = next_number++;
        request.flags |= hybster::Request::kFlagRead;
        request.payload = apps::EchoService::make_read(key, 32, 64);
        return request;
    }

    hybster::Reply executed(const hybster::Request& request,
                            std::string_view result, std::uint32_t replica) {
        hybster::Reply reply;
        reply.kind = hybster::Reply::Kind::Ordered;
        reply.request_id = request.id;
        reply.result = to_bytes(result);
        reply.replica = replica;
        return reply;
    }

    /// Executes the ordered read for `key` on both enclaves so both
    /// caches hold `result` — the state the real system reaches after the
    /// first ordered miss for a key.
    void warm(std::uint64_t key, std::string_view result) {
        const hybster::Request request = ordered_read(key);
        contact->authenticate_reply(meter, request,
                                    executed(request, result, 0));
        remote->authenticate_reply(meter, request,
                                   executed(request, result, 1));
    }

    /// Sends a read through the client channel; the warm cache makes the
    /// contact start a fast read and surface one query for the remote.
    CacheQuery start_read(std::uint64_t key) {
        auto actions = contact->handle_request(
            meter, kClientNode,
            channel->protect(apps::EchoService::make_read(key, 32, 64)));
        EXPECT_EQ(actions.cache_queries.size(), 1u);
        EXPECT_EQ(actions.cache_queries[0].first, kRemoteNode);
        return std::move(actions.cache_queries[0].second);
    }

    /// Extracts the client-frame payload of the single queued send.
    Bytes unframe(const TroxyActions& actions) {
        EXPECT_EQ(actions.sends.size(), 1u);
        const auto unwrapped = net::unwrap(actions.sends[0].second);
        EXPECT_TRUE(unwrapped.has_value());
        EXPECT_EQ(unwrapped->first, net::Channel::Client);
        const auto frame = net::unframe_client(unwrapped->second);
        EXPECT_TRUE(frame.has_value());
        return frame->second;
    }

    /// Decodes a queued send as a TroxyCache-channel message.
    CacheMessage decode_cache_send(
        const std::pair<sim::NodeId, Bytes>& send) {
        const auto unwrapped = net::unwrap(send.second);
        EXPECT_TRUE(unwrapped.has_value());
        EXPECT_EQ(unwrapped->first, net::Channel::TroxyCache);
        auto message = decode_cache_message(unwrapped->second);
        EXPECT_TRUE(message.has_value());
        return std::move(*message);
    }
};

}  // namespace

TEST(TroxyEnclave, BatchedFastReadOneTransitionPerStage) {
    FastReadRig rig;
    for (std::uint64_t key = 0; key < 4; ++key) {
        rig.warm(key, "value-" + std::to_string(key));
    }
    std::vector<CacheQuery> queries;
    for (std::uint64_t key = 0; key < 4; ++key) {
        queries.push_back(rig.start_read(key));
    }

    // Remote side: the whole burst is answered in ONE transition and the
    // four responses return as ONE CacheResponseBatch.
    const std::uint64_t remote_before = rig.remote->gate().transitions();
    auto remote_actions =
        rig.remote->handle_cache_queries(rig.meter, queries);
    EXPECT_EQ(rig.remote->gate().transitions(), remote_before + 1);
    ASSERT_EQ(remote_actions.sends.size(), 1u);
    EXPECT_EQ(remote_actions.sends[0].first, FastReadRig::kContactNode);
    auto message = rig.decode_cache_send(remote_actions.sends[0]);
    auto* batch = std::get_if<CacheResponseBatch>(&message);
    ASSERT_NE(batch, nullptr);
    ASSERT_EQ(batch->responses.size(), 4u);
    EXPECT_EQ(rig.remote->status().cache_query_batches, 1u);
    EXPECT_EQ(rig.remote->status().batched_cache_queries, 4u);

    // Contact side: the burst applies in ONE transition; all four fast
    // reads complete and release as ONE coalesced client record.
    const std::uint64_t contact_before = rig.contact->gate().transitions();
    auto contact_actions =
        rig.contact->handle_cache_responses(rig.meter, batch->responses);
    EXPECT_EQ(rig.contact->gate().transitions(), contact_before + 1);
    const auto status = rig.contact->status();
    EXPECT_EQ(status.fast_read_hits, 4u);
    EXPECT_EQ(status.fast_read_conflicts, 0u);
    EXPECT_EQ(status.cache_response_batches, 1u);
    EXPECT_EQ(status.batched_cache_responses, 4u);
    const auto replies =
        rig.channel->unprotect(rig.unframe(contact_actions));
    ASSERT_EQ(replies.size(), 4u);
    for (std::size_t i = 0; i < replies.size(); ++i) {
        EXPECT_EQ(replies[i], to_bytes("value-" + std::to_string(i)));
    }
}

TEST(TroxyEnclave, CacheBatchOfOneMatchesSinglePath) {
    // The batched entry points with a one-element burst must produce
    // byte-identical output to the single-message ecalls, so the host's
    // flush-of-one (which emits the plain wire form and dispatches the
    // single ecall) and a degenerate batch are interchangeable.
    FastReadRig single;
    FastReadRig batched;
    single.warm(1, "v1");
    batched.warm(1, "v1");
    const CacheQuery squery = single.start_read(1);
    const CacheQuery bquery = batched.start_read(1);

    // Remote side: a burst of one answers as a plain CacheResponse — the
    // same bytes the single ecall emits — in one transition either way.
    auto sresp = single.remote->handle_cache_query(single.meter, squery);
    auto bresp =
        batched.remote->handle_cache_queries(batched.meter, {bquery});
    ASSERT_EQ(sresp.sends.size(), 1u);
    ASSERT_EQ(bresp.sends.size(), 1u);
    EXPECT_EQ(sresp.sends[0], bresp.sends[0]);
    EXPECT_EQ(single.remote->gate().transitions(),
              batched.remote->gate().transitions());
    auto smessage = single.decode_cache_send(sresp.sends[0]);
    const auto* response = std::get_if<CacheResponse>(&smessage);
    ASSERT_NE(response, nullptr);

    // Contact side: applying the burst of one releases the same sealed
    // client record as the single-response ecall.
    auto sdone =
        single.contact->handle_cache_response(single.meter, *response);
    auto bdone =
        batched.contact->handle_cache_responses(batched.meter, {*response});
    ASSERT_EQ(sdone.sends.size(), 1u);
    ASSERT_EQ(bdone.sends.size(), 1u);
    EXPECT_EQ(sdone.sends[0], bdone.sends[0]);
    EXPECT_EQ(single.contact->status().fast_read_hits, 1u);
    EXPECT_EQ(batched.contact->status().fast_read_hits, 1u);
}

TEST(TroxyEnclave, AuthenticateRepliesOneTransitionSameCertificates) {
    FastReadRig rig;
    std::vector<hybster::Request> requests;
    std::vector<hybster::Reply> replies;
    std::vector<TroxyEnclave::ReplyAuth> batch;
    for (std::uint64_t key = 0; key < 4; ++key) {
        requests.push_back(rig.ordered_read(key));
        replies.push_back(rig.executed(requests.back(),
                                       "r" + std::to_string(key), 0));
    }
    for (std::size_t i = 0; i < requests.size(); ++i) {
        batch.push_back(TroxyEnclave::ReplyAuth{&requests[i], &replies[i]});
    }

    const std::uint64_t before = rig.contact->gate().transitions();
    const auto certs =
        rig.contact->authenticate_replies(rig.meter, batch);
    EXPECT_EQ(rig.contact->gate().transitions(), before + 1);
    ASSERT_EQ(certs.size(), 4u);
    EXPECT_EQ(rig.contact->status().reply_auth_batches, 1u);
    EXPECT_EQ(rig.contact->status().batch_authenticated_replies, 4u);
    // The batch certified the ordered reads, so the cache is warm now.
    EXPECT_EQ(rig.contact->status().cache_entries, 4u);

    // Every certificate in the batch verifies exactly like one produced
    // by the per-reply ecall (the running MAC changes cost, not bytes).
    enclave::CostedCrypto crypto(rig.profile, rig.meter);
    for (std::size_t i = 0; i < certs.size(); ++i) {
        EXPECT_TRUE(rig.remote_trinx->verify_independent(
            crypto, 0, replies[i].certified_view(), certs[i]));
    }
}

TEST(TroxyEnclave, AuthenticateBatchOfOneMatchesSinglePath) {
    // Cost parity, not just byte parity: a one-element batch charges the
    // exact same marshalled bytes and crypto work as authenticate_reply.
    FastReadRig single;
    FastReadRig batched;
    const hybster::Request srequest = single.ordered_read(5);
    const hybster::Request brequest = batched.ordered_read(5);
    const hybster::Reply sreply = single.executed(srequest, "r5", 0);
    const hybster::Reply breply = batched.executed(brequest, "r5", 0);

    enclave::CostMeter m_single;
    enclave::CostMeter m_batched;
    const auto cert =
        single.contact->authenticate_reply(m_single, srequest, sreply);
    const auto certs = batched.contact->authenticate_replies(
        m_batched, {TroxyEnclave::ReplyAuth{&brequest, &breply}});
    ASSERT_EQ(certs.size(), 1u);
    EXPECT_EQ(certs[0], cert);
    EXPECT_EQ(m_single.total(), m_batched.total());
    EXPECT_EQ(single.contact->gate().transitions(),
              batched.contact->gate().transitions());
}

TEST(TroxyEnclave, ByzantineCacheResponseFallsBackOnlyItself) {
    FastReadRig rig;
    for (std::uint64_t key = 0; key < 4; ++key) {
        rig.warm(key, "value-" + std::to_string(key));
    }
    // The remote's cache for the LAST key diverges (a stale or lying
    // replica): its correctly-certified response carries a mismatching
    // result digest. Last so the three earlier reads sit below the
    // conflicted connection slot and can release in order.
    {
        const hybster::Request request = rig.ordered_read(3);
        rig.remote->authenticate_reply(rig.meter, request,
                                       rig.executed(request, "stale", 1));
    }

    std::vector<CacheQuery> queries;
    for (std::uint64_t key = 0; key < 4; ++key) {
        queries.push_back(rig.start_read(key));
    }
    auto remote_actions =
        rig.remote->handle_cache_queries(rig.meter, queries);
    auto message = rig.decode_cache_send(remote_actions.sends[0]);
    auto* batch = std::get_if<CacheResponseBatch>(&message);
    ASSERT_NE(batch, nullptr);

    auto actions =
        rig.contact->handle_cache_responses(rig.meter, batch->responses);
    const auto status = rig.contact->status();
    // The mismatch conflicted exactly one fast read — the other three in
    // the same burst completed within the same transition.
    EXPECT_EQ(status.fast_read_conflicts, 1u);
    EXPECT_EQ(status.fast_read_hits, 3u);
    ASSERT_EQ(actions.to_order.size(), 1u);
    EXPECT_TRUE(actions.to_order[0].is_read());
    const auto replies = rig.channel->unprotect(rig.unframe(actions));
    ASSERT_EQ(replies.size(), 3u);
    for (std::size_t i = 0; i < replies.size(); ++i) {
        EXPECT_EQ(replies[i], to_bytes("value-" + std::to_string(i)));
    }
}

// ------------------------------------- batch invalidation / fallback burst

TEST(TroxyEnclave, FallbackBurstEntersOrderingPrebatched) {
    // Every fast read in the burst conflicts (the remote's cache diverged
    // on all four keys): instead of four independent ordering submissions
    // the whole burst surfaces as ONE pre-formed batch for
    // Replica::submit_prebatched.
    FastReadRig rig;
    for (std::uint64_t key = 0; key < 4; ++key) {
        const hybster::Request request = rig.ordered_read(key);
        rig.contact->authenticate_reply(rig.meter, request,
                                        rig.executed(request, "local", 0));
        rig.remote->authenticate_reply(rig.meter, request,
                                       rig.executed(request, "stale", 1));
    }
    std::vector<CacheQuery> queries;
    for (std::uint64_t key = 0; key < 4; ++key) {
        queries.push_back(rig.start_read(key));
    }
    auto remote_actions =
        rig.remote->handle_cache_queries(rig.meter, queries);
    auto message = rig.decode_cache_send(remote_actions.sends[0]);
    auto* batch = std::get_if<CacheResponseBatch>(&message);
    ASSERT_NE(batch, nullptr);

    auto actions =
        rig.contact->handle_cache_responses(rig.meter, batch->responses);
    const auto status = rig.contact->status();
    EXPECT_EQ(status.fast_read_conflicts, 4u);
    EXPECT_TRUE(actions.to_order.empty());
    ASSERT_EQ(actions.to_order_batch.size(), 4u);
    for (const hybster::Request& request : actions.to_order_batch) {
        EXPECT_TRUE(request.is_read());
    }
    EXPECT_EQ(status.fallback_prebatches, 1u);
    EXPECT_EQ(status.prebatched_fallbacks, 4u);
}

TEST(TroxyEnclave, ExecutedWriteBatchInvalidatesEachKeyOnce) {
    // Three writes to one key certified in a single batched transition:
    // the key drops from the cache once, the two repeat writers are
    // dedup savings.
    FastReadRig rig;
    std::vector<hybster::Request> requests;
    std::vector<hybster::Reply> replies;
    for (int i = 0; i < 3; ++i) {
        hybster::Request request;
        request.id.client = FastReadRig::kContactNode;
        request.id.number = rig.next_number++;
        request.payload = apps::EchoService::make_write(7, 16);
        requests.push_back(std::move(request));
    }
    for (const hybster::Request& request : requests) {
        replies.push_back(rig.executed(request, "ack", 0));
    }
    std::vector<TroxyEnclave::ReplyAuth> batch;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        batch.push_back(TroxyEnclave::ReplyAuth{&requests[i], &replies[i]});
    }
    rig.contact->authenticate_replies(rig.meter, batch);
    const auto status = rig.contact->status();
    EXPECT_EQ(status.cache_invalidations, 1u);
    EXPECT_EQ(status.invalidations_saved, 2u);
}

TEST(TroxyEnclave, RepeatWriteAcrossTransitionsSkipsInvalidation) {
    // Cross-batch dedup: once a key is invalidated and nothing re-cached
    // it, later transitions' writes to it provably find no entry to drop
    // — the invalidation is skipped entirely. A read that re-fills the
    // cache re-arms the key.
    FastReadRig rig;
    auto write_once = [&]() {
        hybster::Request request;
        request.id.client = FastReadRig::kContactNode;
        request.id.number = rig.next_number++;
        request.payload = apps::EchoService::make_write(7, 16);
        const hybster::Reply reply = rig.executed(request, "ack", 0);
        rig.contact->authenticate_reply(rig.meter, request, reply);
    };

    write_once();  // first write: the key drops from the cache
    const auto first = rig.contact->status();
    EXPECT_EQ(first.invalidations_saved_cross_batch, 0u);

    write_once();  // separate transition, key still uncached: skipped
    write_once();
    const auto skipped = rig.contact->status();
    EXPECT_EQ(skipped.invalidations_saved_cross_batch, 2u);
    EXPECT_EQ(skipped.cache_invalidations, first.cache_invalidations);

    // An executed ordered read re-caches the key...
    hybster::Request read;
    read.id.client = FastReadRig::kContactNode;
    read.id.number = rig.next_number++;
    read.flags |= hybster::Request::kFlagRead;
    read.payload = apps::EchoService::make_read(7, 32, 64);
    rig.contact->authenticate_reply(rig.meter, read,
                                    rig.executed(read, "value", 0));

    // ...so the next write must invalidate for real again.
    write_once();
    const auto rearmed = rig.contact->status();
    EXPECT_EQ(rearmed.invalidations_saved_cross_batch, 2u);
    EXPECT_EQ(rearmed.cache_invalidations, skipped.cache_invalidations + 1);
}

TEST(TroxyEnclave, WriteReadWriteBatchLeavesNoStaleEntry) {
    // Regression: within one batched transition, a read between two
    // writes of the same key re-fills the cache; the second write must
    // invalidate AGAIN (the read re-arms the key in the dedup set) or a
    // stale entry survives the batch.
    auto run = [](bool trailing_write) {
        FastReadRig rig;
        std::vector<hybster::Request> requests;
        std::vector<hybster::Reply> replies;
        auto add = [&](bool read) {
            hybster::Request request;
            request.id.client = FastReadRig::kContactNode;
            request.id.number = rig.next_number++;
            if (read) {
                request.flags |= hybster::Request::kFlagRead;
                request.payload = apps::EchoService::make_read(7, 32, 64);
            } else {
                request.payload = apps::EchoService::make_write(7, 16);
            }
            requests.push_back(std::move(request));
        };
        add(false);
        add(true);
        if (trailing_write) add(false);
        for (const hybster::Request& request : requests) {
            replies.push_back(rig.executed(
                request, request.is_read() ? "value" : "ack", 0));
        }
        std::vector<TroxyEnclave::ReplyAuth> batch;
        for (std::size_t i = 0; i < requests.size(); ++i) {
            batch.push_back(
                TroxyEnclave::ReplyAuth{&requests[i], &replies[i]});
        }
        rig.contact->authenticate_replies(rig.meter, batch);

        // A fresh client read of the key: a live cache entry starts a
        // fast read (cache query); an invalidated one falls back to
        // ordering.
        auto actions = rig.contact->handle_request(
            rig.meter, FastReadRig::kClientNode,
            rig.channel->protect(apps::EchoService::make_read(7, 32, 64)));
        return std::pair(actions.cache_queries.size(),
                         actions.to_order.size());
    };

    // write-read: the read's fresh entry is live, the follow-up read
    // fast-reads from it.
    const auto [wr_queries, wr_ordered] = run(false);
    EXPECT_EQ(wr_queries, 1u);
    EXPECT_EQ(wr_ordered, 0u);

    // write-read-write: the second write killed the read's entry; the
    // follow-up read must be ordered.
    const auto [wrw_queries, wrw_ordered] = run(true);
    EXPECT_EQ(wrw_queries, 0u);
    EXPECT_EQ(wrw_ordered, 1u);
}

TEST(TroxyEnclave, WriteSetGatesAndInvalidatesScanPartitions) {
    // KV coherence: an in-flight put("ab") gates fast reads on every
    // covering scan partition, and its completed vote invalidates them.
    VotingRig rig([](ByteView request) {
        return apps::KvService().classify(request);
    });

    // Warm the contact cache for the scan("a") partition via an executed
    // ordered scan.
    hybster::Request scan_request;
    scan_request.id.client = VotingRig::kHostNode;
    scan_request.id.number = 900;
    scan_request.flags |= hybster::Request::kFlagRead;
    scan_request.payload = apps::KvService::make_scan("a");
    hybster::Reply scan_reply;
    scan_reply.kind = hybster::Reply::Kind::Ordered;
    scan_reply.request_id = scan_request.id;
    scan_reply.result = to_bytes("scan-result");
    scan_reply.replica = 0;
    rig.enclave->authenticate_reply(rig.meter, scan_request, scan_reply);

    // Order a put whose write set covers "scan:a".
    auto put_actions = rig.enclave->handle_request(
        rig.meter, VotingRig::kClientNode,
        rig.channel->protect(apps::KvService::make_put("ab", "v")));
    ASSERT_EQ(put_actions.to_order.size(), 1u);
    const hybster::Request put = put_actions.to_order[0];

    // Despite the warm cache, the scan must be conservatively ordered
    // while the put is in flight — the gate works through the write-set
    // closure, not just the exact key.
    auto gated = rig.enclave->handle_request(
        rig.meter, VotingRig::kClientNode,
        rig.channel->protect(apps::KvService::make_scan("a")));
    EXPECT_TRUE(gated.cache_queries.empty());
    EXPECT_EQ(gated.to_order.size(), 1u);

    // Complete the put's vote: the whole write set (kv:ab + scan:"",
    // scan:a, scan:ab) is invalidated, each key once.
    const auto before = rig.enclave->status();
    auto vote_actions = rig.enclave->handle_replies(
        rig.meter, {rig.make_reply(0, put), rig.make_reply(1, put)});
    const auto after = rig.enclave->status();
    EXPECT_EQ(after.completed_votes, before.completed_votes + 1);
    EXPECT_EQ(after.cache_invalidations - before.cache_invalidations, 4u);
    EXPECT_EQ(after.invalidations_saved, before.invalidations_saved);
}

TEST(TroxyEnclave, LatencyTargetFlushesLoneFastReadImmediately) {
    // Under batched fast reads a lone query normally waits out the flush
    // delay; with the latency target on, a cold served-load EWMA predicts
    // the batch will never fill and the host flushes immediately,
    // recovering batch-1 latency at low load.
    auto fast_read_latency = [](bool latency_target) {
        bench::TroxyCluster::Params params = cluster_params(44);
        params.host.fastread_batch_max = 8;
        params.host.fastread_batch_delay = sim::milliseconds(5);
        params.host.fastread_latency_target = latency_target;
        bench::TroxyCluster cluster(std::move(params));
        auto& client = cluster.add_client(0);
        sim::SimTime start = 0;
        sim::SimTime done = 0;
        client.start([&]() {
            client.send(apps::EchoService::make_write(1, 64), [&](Bytes) {
                // The first read is ordered (cold caches) and warms every
                // replica; the second takes the fast path through the
                // batching host.
                client.send(
                    apps::EchoService::make_read(1, 32, 64), [&](Bytes) {
                        start = cluster.simulator().now();
                        client.send(apps::EchoService::make_read(1, 32, 64),
                                    [&](Bytes) {
                                        done = cluster.simulator().now();
                                    });
                    });
            });
        });
        cluster.simulator().run_until(sim::seconds(5));
        EXPECT_GT(done, start);
        return done - start;
    };
    const sim::Duration held = fast_read_latency(false);
    const sim::Duration immediate = fast_read_latency(true);
    EXPECT_GE(held, sim::milliseconds(5));
    EXPECT_LT(immediate, sim::milliseconds(2));
}

}  // namespace
}  // namespace troxy::troxy_core
