// Property-based tests: linearizability of random concurrent histories
// through the fast-read cache, the write-invalidation quorum invariant,
// and parameterized sweeps over payload sizes and fault thresholds.
#include <gtest/gtest.h>

#include "apps/echo_service.hpp"
#include "bench_support/cluster.hpp"
#include "common/serialize.hpp"

namespace troxy {
namespace {

using apps::EchoService;

bench::TroxyCluster::Params make_params(std::uint64_t seed, int f = 1) {
    bench::TroxyCluster::Params params;
    params.base.seed = seed;
    params.base.f = f;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    params.host.fast_read_timeout = sim::milliseconds(20);
    return params;
}

/// Extracts the version from an EchoService write acknowledgement.
std::uint64_t ack_version(const Bytes& ack) {
    Reader r(ack);
    EXPECT_EQ(r.u8(), 1);
    return r.u64();
}

/// Recovers the version a read reply corresponds to by comparison with
/// the deterministic expected contents; -1 if it matches none.
std::int64_t read_version(const Bytes& reply, std::uint64_t key,
                          std::size_t size, std::uint64_t max_version) {
    for (std::uint64_t v = 0; v <= max_version; ++v) {
        if (reply == EchoService::expected_read_reply(key, v, size)) {
            return static_cast<std::int64_t>(v);
        }
    }
    return -1;
}

// ------------------------------------------------------- linearizability

// Random concurrent history on a single register (key), multiple clients,
// mixed fast reads and writes. EchoService's versioned register makes the
// linearizability check exact:
//   * every read must return a version between (a) the highest version
//     whose write COMPLETED before the read was invoked, and (b) the
//     number of writes INVOKED before the read completed;
//   * write acks must hand out versions 1..W exactly once.
struct HistoryChecker {
    std::uint64_t completed_version = 0;  // highest acked write version
    std::uint64_t invoked_writes = 0;
    std::vector<std::uint64_t> acked_versions;
    int violations = 0;
    int reads_done = 0;
    int writes_done = 0;
};

TEST(Linearizability, RandomSingleKeyHistory) {
    bench::TroxyCluster cluster(make_params(101));
    HistoryChecker checker;
    Rng rng(777);

    constexpr std::uint64_t kKey = 4;
    constexpr std::size_t kReadSize = 96;
    constexpr int kOpsPerClient = 40;

    std::vector<troxy_core::LegacyClient*> clients;
    for (int i = 0; i < 4; ++i) clients.push_back(&cluster.add_client());

    for (auto* client : clients) {
        client->start([&checker, &rng, client, &cluster]() {
            auto issue = std::make_shared<std::function<void(int)>>();
            // The stored function captures itself weakly (a strong
            // self-capture is a shared_ptr cycle, i.e. a leak); the async
            // callbacks below keep the chain alive with strong copies.
            *issue = [&checker, &rng, client,
                      weak = std::weak_ptr(issue)](int remaining) {
                if (remaining == 0) return;
                const auto issue = weak.lock();
                if (!issue) return;
                const bool is_write = rng.next_below(100) < 30;
                if (is_write) {
                    ++checker.invoked_writes;
                    client->send(
                        EchoService::make_write(kKey, 48),
                        [&checker, issue, remaining](Bytes ack) {
                            const std::uint64_t version = ack_version(ack);
                            checker.acked_versions.push_back(version);
                            checker.completed_version =
                                std::max(checker.completed_version, version);
                            ++checker.writes_done;
                            (*issue)(remaining - 1);
                        });
                } else {
                    const std::uint64_t floor = checker.completed_version;
                    client->send(
                        EchoService::make_read(kKey, 32, kReadSize),
                        [&checker, issue, remaining, floor](Bytes reply) {
                            const std::uint64_t ceiling =
                                checker.invoked_writes;
                            const std::int64_t version = read_version(
                                reply, kKey, kReadSize, ceiling + 1);
                            if (version < static_cast<std::int64_t>(floor) ||
                                version >
                                    static_cast<std::int64_t>(ceiling)) {
                                ++checker.violations;
                            }
                            ++checker.reads_done;
                            (*issue)(remaining - 1);
                        });
                }
            };
            (*issue)(kOpsPerClient);
        });
    }

    cluster.simulator().run_until(sim::seconds(120));
    EXPECT_EQ(checker.reads_done + checker.writes_done,
              4 * kOpsPerClient);
    EXPECT_EQ(checker.violations, 0);

    // Write versions must be exactly 1..W, no duplicates or gaps.
    std::sort(checker.acked_versions.begin(), checker.acked_versions.end());
    for (std::size_t i = 0; i < checker.acked_versions.size(); ++i) {
        EXPECT_EQ(checker.acked_versions[i], i + 1);
    }
}

// --------------------------------------------- quorum-invalidation invariant

// §IV-B: when a write's reply reaches any client, at least f+1 Troxies
// must have invalidated the cached entry, so at most f stale caches
// remain — fewer than the f+1 matching entries a fast read needs.
TEST(QuorumInvariant, StaleCachesNeverReachReadQuorum) {
    bench::TroxyCluster cluster(make_params(102));
    auto& client = cluster.add_client(0);

    constexpr std::uint64_t kKey = 9;
    const std::string state_key = "k9";
    const int f = cluster.config().f;

    int checks = 0;
    client.start([&]() {
        auto cycle = std::make_shared<std::function<void(int)>>();
        *cycle = [&, weak = std::weak_ptr(cycle)](int remaining) {
            if (remaining == 0) return;
            const auto cycle = weak.lock();  // see the weak-capture note above
            if (!cycle) return;
            // Read (fills caches), then write (must invalidate a quorum).
            client.send(EchoService::make_read(kKey, 32, 64), [&, cycle,
                                                               remaining](
                                                                  Bytes) {
                const Bytes before_digest = crypto::sha256_bytes(
                    EchoService::make_read(kKey, 32, 64));
                client.send(EchoService::make_write(kKey, 48), [&, cycle,
                                                                remaining](
                                                                   Bytes) {
                    // The write reply is visible NOW: count caches still
                    // holding any entry for the key.
                    int stale = 0;
                    for (int r = 0; r < cluster.n(); ++r) {
                        if (cluster.host(r).troxy().debug_cache_entry(
                                state_key) != nullptr) {
                            ++stale;
                        }
                    }
                    EXPECT_LE(stale, f) << "write visible while " << stale
                                        << " caches hold the old entry";
                    ++checks;
                    (*cycle)(remaining - 1);
                });
            });
        };
        (*cycle)(10);
    });

    cluster.simulator().run_until(sim::seconds(60));
    EXPECT_EQ(checks, 10);
}

// ------------------------------------------------------ parameterized sweeps

class PayloadSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PayloadSweep, WriteAndReadRoundTripAtSize) {
    const std::size_t size = GetParam();
    bench::TroxyCluster cluster(make_params(103 + size));
    auto& client = cluster.add_client();

    bool done = false;
    client.start([&]() {
        client.send(EchoService::make_write(1, size), [&](Bytes ack) {
            EXPECT_EQ(ack.size(), 10u);
            client.send(EchoService::make_read(1, 32, size),
                        [&](Bytes reply) {
                            EXPECT_EQ(reply,
                                      EchoService::expected_read_reply(
                                          1, 1, size));
                            done = true;
                        });
        });
    });
    cluster.simulator().run_until(sim::seconds(10));
    EXPECT_TRUE(done);
}

INSTANTIATE_TEST_SUITE_P(PaperPayloadSizes, PayloadSweep,
                         ::testing::Values(10, 256, 1024, 4096, 8192,
                                           16384));

class FaultToleranceSweep : public ::testing::TestWithParam<int> {};

TEST_P(FaultToleranceSweep, GroupSizeScalesWithF) {
    const int f = GetParam();
    bench::TroxyCluster cluster(make_params(200 + static_cast<std::uint64_t>(f), f));
    EXPECT_EQ(cluster.n(), 2 * f + 1);

    auto& client = cluster.add_client();
    bool done = false;
    client.start([&]() {
        client.send(EchoService::make_write(1, 64), [&](Bytes) {
            client.send(EchoService::make_read(1, 32, 64), [&](Bytes reply) {
                EXPECT_EQ(reply,
                          EchoService::expected_read_reply(1, 1, 64));
                done = true;
            });
        });
    });
    cluster.simulator().run_until(sim::seconds(10));
    EXPECT_TRUE(done);
}

INSTANTIATE_TEST_SUITE_P(FOneToThree, FaultToleranceSweep,
                         ::testing::Values(1, 2, 3));

// Fast reads keep working at every f: the quorum is f+1 matching caches
// (local + f remote).
class FastReadSweep : public ::testing::TestWithParam<int> {};

TEST_P(FastReadSweep, FastPathServesRepeatedReads) {
    const int f = GetParam();
    bench::TroxyCluster cluster(
        make_params(300 + static_cast<std::uint64_t>(f), f));
    auto& client = cluster.add_client(0);

    int reads = 0;
    client.start([&]() {
        client.send(EchoService::make_write(2, 48), [&](Bytes) {
            auto loop = std::make_shared<std::function<void()>>();
            *loop = [&, weak = std::weak_ptr(loop)]() {
                const auto loop = weak.lock();  // weak-capture, no cycle
                if (!loop) return;
                client.send(EchoService::make_read(2, 32, 128),
                            [&, loop](Bytes reply) {
                                EXPECT_EQ(
                                    reply,
                                    EchoService::expected_read_reply(2, 1,
                                                                     128));
                                if (++reads < 12) (*loop)();
                            });
            };
            (*loop)();
        });
    });
    cluster.simulator().run_until(sim::seconds(30));
    ASSERT_EQ(reads, 12);
    EXPECT_GT(cluster.host(0).troxy().status().fast_read_hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(AcrossF, FastReadSweep, ::testing::Values(1, 2));

// Deterministic replay: identical seeds produce identical event counts
// and results — the foundation of every experiment in bench/.
TEST(Determinism, IdenticalSeedsIdenticalRuns) {
    auto run_once = [](std::uint64_t seed) {
        bench::TroxyCluster cluster(make_params(seed));
        auto& client = cluster.add_client();
        std::vector<Bytes> replies;
        client.start([&]() {
            auto loop = std::make_shared<std::function<void(int)>>();
            *loop = [&, weak = std::weak_ptr(loop)](int remaining) {
                if (remaining == 0) return;
                const auto loop = weak.lock();  // weak-capture, no cycle
                if (!loop) return;
                client.send(EchoService::make_write(1, 64),
                            [&, loop, remaining](Bytes ack) {
                                replies.push_back(std::move(ack));
                                (*loop)(remaining - 1);
                            });
            };
            (*loop)(5);
        });
        cluster.simulator().run_until(sim::seconds(10));
        return std::make_pair(cluster.simulator().executed_events(),
                              replies);
    };

    const auto first = run_once(42);
    const auto second = run_once(42);
    const auto different = run_once(43);
    EXPECT_EQ(first.first, second.first);
    EXPECT_EQ(first.second, second.second);
    EXPECT_EQ(first.second.size(), 5u);
    // A different seed still completes but takes a different event path.
    EXPECT_EQ(different.second.size(), 5u);
}

}  // namespace
}  // namespace troxy
