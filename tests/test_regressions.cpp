// Regression tests for defects found and fixed during development. Each
// test encodes the failure mode so it can never silently return.
#include <gtest/gtest.h>

#include "apps/echo_service.hpp"
#include "bench_support/cluster.hpp"
#include "bench_support/workload.hpp"
#include "net/outbox.hpp"

namespace troxy {
namespace {

using apps::EchoService;

// Regression: Outbox::flush once captured `this` of the stack-allocated
// outbox; the deferred send then used a dangling pointer. The fix
// captures the long-lived Fabric. This test forces the outbox to die
// before the scheduled event runs.
TEST(Regression, OutboxOutlivesItsFlush) {
    sim::Simulator sim;
    sim::Network network(sim);
    net::Fabric fabric(sim, network);
    sim::Node node(sim, 1, "n", 1);

    Bytes received;
    fabric.attach(2, [&](sim::NodeId, Bytes message) {
        received = std::move(message);
    });
    {
        net::Outbox outbox(fabric, node);
        outbox.send(2, to_bytes("survives"));
        enclave::CostMeter meter;
        meter.add(sim::microseconds(100));
        outbox.flush(meter);
    }  // outbox destroyed before the event fires
    sim.run();
    EXPECT_EQ(received, to_bytes("survives"));
}

// Regression: multi-core completion reordering let a node's messages hit
// the wire out of processing order, desynchronizing Hybster's trusted
// counters. exec_ordered must force in-call-order completions.
TEST(Regression, ExecOrderedNeverInverts) {
    sim::Simulator sim;
    sim::Node node(sim, 1, "n", 4);

    std::vector<int> completions;
    node.exec_ordered(1000, [&] { completions.push_back(1); });  // slow
    node.exec_ordered(10, [&] { completions.push_back(2); });    // fast
    node.exec_ordered(10, [&] { completions.push_back(3); });
    sim.run();
    EXPECT_EQ(completions, (std::vector<int>{1, 2, 3}));
}

TEST(Regression, ExecOrderedHonorsExternalFloor) {
    sim::Simulator sim;
    sim::Node node(sim, 1, "n", 4);
    sim::SimTime done = 0;
    node.exec_ordered(10, [&] { done = sim.now(); },
                      /*not_before=*/sim::milliseconds(5));
    sim.run();
    EXPECT_GE(done, sim::milliseconds(5));
}

// Regression: receive-side NIC bandwidth was booked in *send* order, so
// an early-sent WAN packet (arriving late) blocked a later-sent LAN
// packet that physically arrived first, inflating LAN RTTs by tens of
// milliseconds.
TEST(Regression, IngressBookedInArrivalOrder) {
    sim::Simulator sim;
    sim::Network network(sim);
    network.set_nic_group(100, 1, 1e9);  // shared destination machine

    sim::LinkSpec slow;
    slow.latency = sim::LatencyModel::constant(sim::milliseconds(100));
    sim::LinkSpec fast;
    fast.latency = sim::LatencyModel::constant(sim::microseconds(50));
    network.set_link(10, 100, slow);
    network.set_link(11, 100, fast);

    sim::SimTime wan_arrival = 0, lan_arrival = 0;
    network.send(10, 100, 100, [&] { wan_arrival = sim.now(); });  // first
    network.send(11, 100, 100, [&] { lan_arrival = sim.now(); });  // second
    sim.run();
    // The LAN message must NOT wait for the earlier-sent WAN message.
    EXPECT_LT(lan_arrival, sim::milliseconds(1));
    EXPECT_GE(wan_arrival, sim::milliseconds(100));
}

// Regression: hybster::Client::retry_ordered took the Pending by rvalue
// reference and then erased the map entry it pointed into (use after
// free). Conflicted optimistic reads under contention now complete with
// the correct value.
TEST(Regression, OptimisticReadRetryUnderContention) {
    bench::BaselineCluster::Params params;
    params.base.seed = 91;
    params.base.lan_jitter = sim::microseconds(500);  // desynchronize
    params.service = []() { return std::make_unique<EchoService>(); };
    params.optimistic_reads = true;
    bench::BaselineCluster cluster(params);

    bench::Recorder recorder(sim::milliseconds(200), sim::seconds(2));
    bench::Workload workload(
        cluster.simulator(), recorder,
        [](Rng& rng) {
            bench::GeneratedRequest request;
            request.is_read = rng.next_below(100) < 90;
            request.payload =
                request.is_read ? EchoService::make_read(0, 32, 64)
                                : EchoService::make_write(0, 48);
            return request;
        },
        91);
    for (int i = 0; i < 8; ++i) {
        workload.drive_bft(cluster.add_client(), 4);
    }
    cluster.simulator().run_until(recorder.window_end() + sim::seconds(3));

    EXPECT_GT(recorder.completed(), 1000u);
    std::uint64_t conflicts = 0;
    for (auto* client : cluster.clients()) {
        conflicts += client->read_conflicts();
    }
    EXPECT_GT(conflicts, 0u) << "contention should cause retried reads";
}

// Regression: forwarded requests were lost when the leader crashed
// before preparing them — the new view never re-proposed them and no
// client retransmit existed at the replica layer.
TEST(Regression, ForwardedRequestSurvivesViewChange) {
    bench::TroxyCluster::Params params;
    params.base.seed = 92;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    params.host.vote_timeout = sim::milliseconds(400);
    bench::TroxyCluster cluster(std::move(params));

    // Crash the leader before any traffic: the very first write arrives
    // at a follower, is forwarded into the void, and must still commit
    // after the view change.
    hybster::FaultProfile crash;
    crash.crashed = true;
    cluster.host(0).set_faults(crash);

    auto& client = cluster.add_client(1);
    bool done = false;
    client.start([&]() {
        client.send(EchoService::make_write(3, 64),
                    [&](Bytes) { done = true; });
    });
    cluster.simulator().run_until(sim::seconds(40));
    EXPECT_TRUE(done);
    EXPECT_GT(cluster.host(1).replica().view(), 0u);
}

// Regression: fast reads raced with the Troxy's own in-flight writes on
// the same key; the pending-write suppression must order such reads.
TEST(Regression, FastReadSuppressedWhileOwnWritePending) {
    bench::TroxyCluster::Params params;
    params.base.seed = 93;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    bench::TroxyCluster cluster(std::move(params));
    auto& client = cluster.add_client(0);

    int correct = 0;
    client.start([&]() {
        // Warm the cache.
        client.send(EchoService::make_write(1, 48), [&](Bytes) {
            client.send(EchoService::make_read(1, 32, 64), [&](Bytes) {
                // Pipeline a write and immediately a read of the same
                // key; the read must see the write's effect.
                client.send(EchoService::make_write(1, 48), [&](Bytes) {});
                client.send(EchoService::make_read(1, 32, 64),
                            [&](Bytes reply) {
                                if (reply ==
                                    EchoService::expected_read_reply(
                                        1, 2, 64)) {
                                    ++correct;
                                }
                            });
            });
        });
    });
    cluster.simulator().run_until(sim::seconds(10));
    EXPECT_EQ(correct, 1);
}

// Regression: secure-channel records could arrive out of protect order
// (multi-core flush inversions); the receiver must reassemble rather
// than poison the channel. End-to-end: heavy pipelining on a single
// connection completes every request.
TEST(Regression, PipelinedConnectionNeverWedges) {
    bench::TroxyCluster::Params params;
    params.base.seed = 94;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    bench::TroxyCluster cluster(std::move(params));
    auto& client = cluster.add_client(0);

    constexpr int kPipelined = 64;
    int completed = 0;
    client.start([&]() {
        for (int i = 0; i < kPipelined; ++i) {
            client.send(EchoService::make_write(
                            static_cast<std::uint64_t>(i % 5), 64),
                        [&](Bytes) { ++completed; });
        }
    });
    cluster.simulator().run_until(sim::seconds(10));
    EXPECT_EQ(completed, kPipelined);
    EXPECT_EQ(client.failovers(), 0u) << "no watchdog resets needed";
}

}  // namespace
}  // namespace troxy
