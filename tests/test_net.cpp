#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/client_framing.hpp"
#include "net/envelope.hpp"
#include "net/fabric.hpp"
#include "net/fragment.hpp"
#include "net/mac_table.hpp"
#include "net/outbox.hpp"
#include "net/secure_channel.hpp"

namespace troxy::net {
namespace {

const sim::CostProfile kNative = sim::CostProfile::native();

// ------------------------------------------------------------------ fabric

TEST(Fabric, DeliversToAttachedHandler) {
    sim::Simulator sim;
    sim::Network network(sim);
    Fabric fabric(sim, network);

    Bytes received;
    sim::NodeId sender = 0;
    fabric.attach(2, [&](sim::NodeId from, Bytes message) {
        sender = from;
        received = std::move(message);
    });
    fabric.send(1, 2, to_bytes("hello"));
    sim.run();
    EXPECT_EQ(sender, 1u);
    EXPECT_EQ(received, to_bytes("hello"));
}

TEST(Fabric, DropsForDetachedEndpoint) {
    sim::Simulator sim;
    sim::Network network(sim);
    Fabric fabric(sim, network);

    int delivered = 0;
    fabric.attach(2, [&](sim::NodeId, Bytes) { ++delivered; });
    fabric.send(1, 2, to_bytes("a"));
    fabric.detach(2);  // crash before delivery
    sim.run();
    EXPECT_EQ(delivered, 0);
}

// ---------------------------------------------------------------- envelope

TEST(Envelope, WrapUnwrapRoundTrip) {
    const Bytes wrapped = wrap(Channel::TroxyCache, to_bytes("payload"));
    const auto unwrapped = unwrap(wrapped);
    ASSERT_TRUE(unwrapped.has_value());
    EXPECT_EQ(unwrapped->first, Channel::TroxyCache);
    EXPECT_EQ(unwrapped->second, to_bytes("payload"));
}

TEST(Envelope, RejectsUnknownChannelAndEmpty) {
    EXPECT_FALSE(unwrap(Bytes{}).has_value());
    EXPECT_FALSE(unwrap(Bytes{0xee, 1, 2}).has_value());
}

TEST(ClientFraming, RoundTrip) {
    const Bytes framed = frame_client(ClientFrame::Record, to_bytes("data"));
    const auto unframed = unframe_client(framed);
    ASSERT_TRUE(unframed.has_value());
    EXPECT_EQ(unframed->first, ClientFrame::Record);
    EXPECT_EQ(unframed->second, to_bytes("data"));
    EXPECT_FALSE(unframe_client(Bytes{}).has_value());
    EXPECT_FALSE(unframe_client(Bytes{9}).has_value());
}

// ---------------------------------------------------------- secure channel

struct Channels {
    SecureChannelClient client;
    SecureChannelServer server;
};

Channels establish() {
    const crypto::X25519Keypair identity =
        crypto::x25519_keypair_from_seed(to_bytes("server-identity"));
    Channels channels{
        SecureChannelClient(identity.public_key, to_bytes("client-seed")),
        SecureChannelServer(identity)};

    enclave::CostMeter meter;
    enclave::CostedCrypto crypto_ops(kNative, meter);
    auto server_hello = channels.server.accept(
        crypto_ops, channels.client.client_hello(), to_bytes("server-seed"));
    EXPECT_TRUE(server_hello.has_value());
    EXPECT_TRUE(channels.client.finish(*server_hello));
    return channels;
}

TEST(SecureChannel, HandshakeEstablishesBothSides) {
    Channels channels = establish();
    EXPECT_TRUE(channels.client.established());
    EXPECT_TRUE(channels.server.established());
}

TEST(SecureChannel, BidirectionalRecords) {
    Channels channels = establish();
    const Bytes request = to_bytes("GET /page/1");
    auto at_server = channels.server.unprotect(channels.client.protect(request));
    ASSERT_EQ(at_server.size(), 1u);
    EXPECT_EQ(at_server[0], request);

    const Bytes reply = to_bytes("<html>page</html>");
    auto at_client = channels.client.unprotect(channels.server.protect(reply));
    ASSERT_EQ(at_client.size(), 1u);
    EXPECT_EQ(at_client[0], reply);
}

TEST(SecureChannel, ManyRecordsInOrder) {
    Channels channels = establish();
    for (int i = 0; i < 50; ++i) {
        const Bytes msg = to_bytes("message " + std::to_string(i));
        auto out = channels.server.unprotect(channels.client.protect(msg));
        ASSERT_EQ(out.size(), 1u);
        EXPECT_EQ(out[0], msg);
    }
}

TEST(SecureChannel, ReplayRejected) {
    Channels channels = establish();
    const Bytes record = channels.client.protect(to_bytes("once"));
    EXPECT_EQ(channels.server.unprotect(record).size(), 1u);
    // "each endpoint will never accept the same chunk of encrypted data
    // twice" (§III-D)
    EXPECT_TRUE(channels.server.unprotect(record).empty());
}

TEST(SecureChannel, ReplayOfBufferedRecordRejected) {
    Channels channels = establish();
    const Bytes first = channels.client.protect(to_bytes("1"));
    const Bytes second = channels.client.protect(to_bytes("2"));
    // `second` arrives early: buffered, not deliverable yet.
    EXPECT_TRUE(channels.server.unprotect(second).empty());
    // Replaying it while buffered must not deliver anything either.
    EXPECT_TRUE(channels.server.unprotect(second).empty());
    // The gap closes: both deliver, in order.
    const auto delivered = channels.server.unprotect(first);
    ASSERT_EQ(delivered.size(), 2u);
    EXPECT_EQ(delivered[0], to_bytes("1"));
    EXPECT_EQ(delivered[1], to_bytes("2"));
    // And replaying after delivery is still rejected.
    EXPECT_TRUE(channels.server.unprotect(second).empty());
    EXPECT_TRUE(channels.server.unprotect(first).empty());
}

TEST(SecureChannel, OutOfOrderRecordsReassembled) {
    Channels channels = establish();
    std::vector<Bytes> records;
    for (int i = 0; i < 5; ++i) {
        records.push_back(
            channels.client.protect(to_bytes("m" + std::to_string(i))));
    }
    // Deliver in scrambled order; output must be the original order.
    std::vector<Bytes> delivered;
    for (const int index : {2, 0, 4, 1, 3}) {
        for (Bytes& msg : channels.server.unprotect(
                 records[static_cast<std::size_t>(index)])) {
            delivered.push_back(std::move(msg));
        }
    }
    ASSERT_EQ(delivered.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(delivered[static_cast<std::size_t>(i)],
                  to_bytes("m" + std::to_string(i)));
    }
}

TEST(SecureChannel, RecordsBeyondWindowDropped) {
    Channels channels = establish();
    // Generate a record far beyond the receive window.
    Bytes far;
    for (std::uint64_t i = 0;
         i <= net::RecordProtection::kReceiveWindow; ++i) {
        far = channels.client.protect(to_bytes("x"));
    }
    EXPECT_TRUE(channels.server.unprotect(far).empty());
}

TEST(SecureChannel, TamperedRecordRejected) {
    Channels channels = establish();
    Bytes record = channels.client.protect(to_bytes("sensitive"));
    record[record.size() - 1] ^= 1;
    EXPECT_TRUE(channels.server.unprotect(record).empty());
}

TEST(SecureChannel, WrongServerIdentityDetected) {
    // The client pins one key; a man-in-the-middle with a different
    // identity cannot complete the handshake.
    const crypto::X25519Keypair real =
        crypto::x25519_keypair_from_seed(to_bytes("real-server"));
    const crypto::X25519Keypair mitm =
        crypto::x25519_keypair_from_seed(to_bytes("mitm"));

    SecureChannelClient client(real.public_key, to_bytes("seed"));
    SecureChannelServer attacker(mitm);

    enclave::CostMeter meter;
    enclave::CostedCrypto crypto_ops(kNative, meter);
    auto hello = attacker.accept(crypto_ops, client.client_hello(),
                                 to_bytes("attacker-seed"));
    ASSERT_TRUE(hello.has_value());
    EXPECT_FALSE(client.finish(*hello));
    EXPECT_FALSE(client.established());
}

TEST(SecureChannel, MalformedHandshakeRejected) {
    const crypto::X25519Keypair identity =
        crypto::x25519_keypair_from_seed(to_bytes("id"));
    SecureChannelServer server(identity);
    enclave::CostMeter meter;
    enclave::CostedCrypto crypto_ops(kNative, meter);
    EXPECT_FALSE(server.accept(crypto_ops, to_bytes("short"),
                               to_bytes("seed")).has_value());

    SecureChannelClient client(identity.public_key, to_bytes("seed"));
    EXPECT_FALSE(client.finish(to_bytes("bogus")));
}

TEST(SecureChannel, SessionsDifferAcrossHandshakes) {
    Channels a = establish();
    // Second handshake with a different client seed yields different keys:
    // a record from one session must not decrypt in the other.
    const crypto::X25519Keypair identity =
        crypto::x25519_keypair_from_seed(to_bytes("server-identity"));
    SecureChannelClient client2(identity.public_key, to_bytes("other-seed"));
    SecureChannelServer server2(identity);
    enclave::CostMeter meter;
    enclave::CostedCrypto crypto_ops(kNative, meter);
    auto hello = server2.accept(crypto_ops, client2.client_hello(),
                                to_bytes("server-seed-2"));
    ASSERT_TRUE(hello.has_value());
    ASSERT_TRUE(client2.finish(*hello));

    const Bytes record = client2.protect(to_bytes("cross"));
    EXPECT_TRUE(a.server.unprotect(record).empty());
}

// ----------------------------------------------- coalesced (multi-message)

TEST(SecureChannel, CoalescedRecordRoundTrip) {
    Channels channels = establish();
    const std::vector<Bytes> burst = {to_bytes("alpha"), to_bytes("beta"),
                                      to_bytes("gamma")};
    std::vector<ByteView> views(burst.begin(), burst.end());
    const Bytes record = channels.client.protect_many(views);
    const auto delivered = channels.server.unprotect(record);
    ASSERT_EQ(delivered.size(), 3u);
    for (std::size_t i = 0; i < burst.size(); ++i) {
        EXPECT_EQ(delivered[i], burst[i]);
    }
}

TEST(SecureChannel, CoalescedRecordReplayRejectedAsAUnit) {
    Channels channels = establish();
    const std::vector<Bytes> burst = {to_bytes("a"), to_bytes("b")};
    std::vector<ByteView> views(burst.begin(), burst.end());
    const Bytes record = channels.client.protect_many(views);
    EXPECT_EQ(channels.server.unprotect(record).size(), 2u);
    // Replaying the whole coalesced record must deliver NONE of its
    // member messages — the anti-replay window tracks the record, and a
    // partial re-delivery would break exactly-once per message.
    EXPECT_TRUE(channels.server.unprotect(record).empty());
}

TEST(SecureChannel, CoalescedRecordTamperRejectsWholeBurst) {
    Channels channels = establish();
    const std::vector<Bytes> burst = {to_bytes("one"), to_bytes("two")};
    std::vector<ByteView> views(burst.begin(), burst.end());
    Bytes record = channels.client.protect_many(views);
    record[record.size() - 1] ^= 1;
    EXPECT_TRUE(channels.server.unprotect(record).empty());
}

TEST(SecureChannel, CoalescedAndSingleRecordsReassembleInOrder) {
    // Mixed stream: single records and coalesced bursts, delivered out of
    // order with one record lost and retransmitted last. Output must be
    // the exact send order with burst members contiguous.
    Channels channels = establish();
    std::vector<Bytes> records;
    records.push_back(channels.client.protect(to_bytes("m0")));
    {
        const std::vector<Bytes> burst = {to_bytes("m1"), to_bytes("m2"),
                                          to_bytes("m3")};
        std::vector<ByteView> views(burst.begin(), burst.end());
        records.push_back(channels.client.protect_many(views));
    }
    records.push_back(channels.client.protect(to_bytes("m4")));
    {
        const std::vector<Bytes> burst = {to_bytes("m5"), to_bytes("m6")};
        std::vector<ByteView> views(burst.begin(), burst.end());
        records.push_back(channels.client.protect_many(views));
    }

    std::vector<Bytes> delivered;
    // Arrival order: record 2, record 3 (buffered), replay of record 3
    // (dropped), record 0 (releases m0 only), then the "lost" record 1
    // retransmitted — releasing everything else in order.
    for (const int index : {2, 3, 3, 0, 1}) {
        for (Bytes& msg : channels.server.unprotect(
                 records[static_cast<std::size_t>(index)])) {
            delivered.push_back(std::move(msg));
        }
    }
    ASSERT_EQ(delivered.size(), 7u);
    for (int i = 0; i < 7; ++i) {
        EXPECT_EQ(delivered[static_cast<std::size_t>(i)],
                  to_bytes("m" + std::to_string(i)));
    }
}

TEST(SecureChannel, EmptyCoalescedRecordDeliversNothing) {
    // A forged count=0 plaintext cannot be produced by protect_many
    // (asserts non-empty), but unprotect must treat it as a no-op rather
    // than a protocol error.
    Channels channels = establish();
    const Bytes record = channels.client.protect_many(
        std::vector<ByteView>{ByteView(to_bytes("only"))});
    const auto delivered = channels.server.unprotect(record);
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0], to_bytes("only"));
}

// ----------------------------------------------------------------- bundle

TEST(Envelope, BundleRoundTrip) {
    const std::vector<Bytes> frames = {
        wrap(Channel::Hybster, to_bytes("p1")),
        wrap(Channel::Client, to_bytes("p2")),
        wrap(Channel::Hybster, to_bytes("p3"))};
    const Bytes bundle = make_bundle(frames);
    const auto unwrapped = unwrap(bundle);
    ASSERT_TRUE(unwrapped.has_value());
    EXPECT_EQ(unwrapped->first, Channel::Bundle);
    const auto inner = unbundle(unwrapped->second);
    ASSERT_TRUE(inner.has_value());
    ASSERT_EQ(inner->size(), 3u);
    for (std::size_t i = 0; i < frames.size(); ++i) {
        EXPECT_EQ((*inner)[i], frames[i]);
    }
}

TEST(Envelope, BundleRejectsMalformed) {
    EXPECT_FALSE(unbundle(Bytes{}).has_value());
    // count says 2 but only one message follows
    Writer w;
    w.u16(2);
    w.bytes(to_bytes("only"));
    EXPECT_FALSE(unbundle(w.data()).has_value());
    // zero messages is not a valid bundle
    Writer empty;
    empty.u16(0);
    EXPECT_FALSE(unbundle(empty.data()).has_value());
    // trailing garbage after the declared messages
    Writer trailing;
    trailing.u16(1);
    trailing.bytes(to_bytes("msg"));
    trailing.u8(0xff);
    EXPECT_FALSE(unbundle(trailing.data()).has_value());
}

// --------------------------------------------------------------- MacTable

TEST(MacTable, SignAndVerify) {
    MacTable table = MacTable::for_group(to_bytes("master"), {1, 2, 3});
    enclave::CostMeter meter;
    enclave::CostedCrypto crypto_ops(kNative, meter);

    const Bytes message = to_bytes("prepare");
    const crypto::HmacTag tag = table.sign(crypto_ops, 1, 2, message);
    EXPECT_TRUE(table.verify(crypto_ops, 1, 2, message, tag));
    EXPECT_FALSE(table.verify(crypto_ops, 1, 3, message, tag));  // other link
    EXPECT_FALSE(table.verify(crypto_ops, 1, 2, to_bytes("forged"), tag));
}

TEST(MacTable, DirectionBinding) {
    MacTable table = MacTable::for_group(to_bytes("master"), {1, 2});
    enclave::CostMeter meter;
    enclave::CostedCrypto crypto_ops(kNative, meter);
    const Bytes message = to_bytes("m");
    const crypto::HmacTag tag = table.sign(crypto_ops, 1, 2, message);
    // Same pair, opposite direction: the frame differs, so it must fail.
    EXPECT_FALSE(table.verify(crypto_ops, 2, 1, message, tag));
}

TEST(MacTable, MissingKey) {
    MacTable table;
    enclave::CostMeter meter;
    enclave::CostedCrypto crypto_ops(kNative, meter);
    EXPECT_FALSE(table.has_key(1, 2));
    EXPECT_FALSE(table.verify(crypto_ops, 1, 2, to_bytes("m"),
                              crypto::HmacTag{}));
}

// ----------------------------------------------------------------- outbox

TEST(Outbox, FlushSendsAfterMeteredCost) {
    sim::Simulator sim;
    sim::Network network(sim);
    sim::LinkSpec instant;
    instant.latency = sim::LatencyModel::constant(0);
    instant.bandwidth_bits_per_sec = 1e15;
    network.set_default_link(instant);
    Fabric fabric(sim, network);
    sim::Node node(sim, 1, "n", 1);

    sim::SimTime delivered_at = 0;
    fabric.attach(2, [&](sim::NodeId, Bytes) { delivered_at = sim.now(); });

    Outbox outbox(fabric, node);
    outbox.send(2, to_bytes("x"));
    enclave::CostMeter meter;
    meter.add(sim::microseconds(500));
    outbox.flush(meter);
    sim.run();
    EXPECT_GE(delivered_at, sim::microseconds(500));
    EXPECT_EQ(meter.total(), 0u);  // flush consumed the meter
}

TEST(Outbox, DeferredCallbacksRunAtFlushTime) {
    sim::Simulator sim;
    sim::Network network(sim);
    Fabric fabric(sim, network);
    sim::Node node(sim, 1, "n", 1);

    Outbox outbox(fabric, node);
    sim::SimTime ran_at = 0;
    outbox.defer([&] { ran_at = sim.now(); });
    enclave::CostMeter meter;
    meter.add(sim::microseconds(100));
    outbox.flush(meter);
    sim.run();
    EXPECT_EQ(ran_at, sim::microseconds(100));
}

TEST(Outbox, CoalescesDestinationBurstsIntoOneBundle) {
    sim::Simulator sim;
    sim::Network network(sim);
    Fabric fabric(sim, network);
    sim::Node node(sim, 1, "n", 1);

    std::vector<Bytes> at_two;
    std::vector<Bytes> at_three;
    fabric.attach(2, [&](sim::NodeId, Bytes m) {
        at_two.push_back(std::move(m));
    });
    fabric.attach(3, [&](sim::NodeId, Bytes m) {
        at_three.push_back(std::move(m));
    });

    Outbox outbox(fabric, node, /*coalesce=*/true);
    outbox.send(2, wrap(Channel::Hybster, to_bytes("a")));
    outbox.send(2, wrap(Channel::Hybster, to_bytes("b")));
    outbox.send(3, wrap(Channel::Hybster, to_bytes("solo")));
    outbox.send(2, wrap(Channel::Hybster, to_bytes("c")));
    enclave::CostMeter meter;
    outbox.flush(meter);
    sim.run();

    // The three messages to node 2 travelled as ONE Bundle frame.
    ASSERT_EQ(at_two.size(), 1u);
    const auto unwrapped = unwrap(at_two[0]);
    ASSERT_TRUE(unwrapped.has_value());
    EXPECT_EQ(unwrapped->first, Channel::Bundle);
    const auto inner = unbundle(unwrapped->second);
    ASSERT_TRUE(inner.has_value());
    ASSERT_EQ(inner->size(), 3u);
    EXPECT_EQ((*inner)[0], wrap(Channel::Hybster, to_bytes("a")));
    EXPECT_EQ((*inner)[1], wrap(Channel::Hybster, to_bytes("b")));
    EXPECT_EQ((*inner)[2], wrap(Channel::Hybster, to_bytes("c")));

    // A single-message destination keeps its original frame byte-for-byte
    // (batch-1 wire traffic is identical to the uncoalesced path).
    ASSERT_EQ(at_three.size(), 1u);
    EXPECT_EQ(at_three[0], wrap(Channel::Hybster, to_bytes("solo")));
}

TEST(Outbox, RecordCostChargedPerBurstNotPerMessage) {
    // Four messages to two destinations cost two records when coalescing,
    // four when not — the meter (observable as the send delay) must match
    // the emitted record count.
    const auto run_case = [](bool coalesce) {
        sim::Simulator sim;
        sim::Network network(sim);
        sim::LinkSpec instant;
        instant.latency = sim::LatencyModel::constant(0);
        instant.bandwidth_bits_per_sec = 1e15;
        network.set_default_link(instant);
        Fabric fabric(sim, network);
        sim::Node node(sim, 1, "n", 1);
        sim::SimTime delivered_at = 0;
        fabric.attach(2, [&](sim::NodeId, Bytes) {
            delivered_at = sim.now();
        });
        fabric.attach(3, [&](sim::NodeId, Bytes) {});

        Outbox outbox(fabric, node, coalesce, sim::microseconds(100));
        outbox.send(2, wrap(Channel::Hybster, to_bytes("a")));
        outbox.send(2, wrap(Channel::Hybster, to_bytes("b")));
        outbox.send(3, wrap(Channel::Hybster, to_bytes("c")));
        outbox.send(3, wrap(Channel::Hybster, to_bytes("d")));
        enclave::CostMeter meter;
        outbox.flush(meter);
        sim.run();
        return delivered_at;
    };
    // (±1 time unit of wire serialization on top of the metered cost)
    const sim::SimTime coalesced = run_case(true);    // 2 bursts
    const sim::SimTime uncoalesced = run_case(false);  // 4 records
    EXPECT_GE(coalesced, sim::microseconds(200));
    EXPECT_LE(coalesced, sim::microseconds(200) + 2);
    EXPECT_GE(uncoalesced, sim::microseconds(400));
    EXPECT_LE(uncoalesced, sim::microseconds(400) + 2);
}

TEST(Outbox, BatchOfOneCostParity) {
    // A flush whose coalesced group holds a single message must charge
    // exactly the non-coalesced cost: same record count, no Bundle
    // surcharge, byte-identical wire frame, identical delivery time.
    const auto run_case = [](bool coalesce) {
        sim::Simulator sim;
        sim::Network network(sim);
        sim::LinkSpec instant;
        instant.latency = sim::LatencyModel::constant(0);
        instant.bandwidth_bits_per_sec = 1e15;
        network.set_default_link(instant);
        Fabric fabric(sim, network);
        sim::Node node(sim, 1, "n", 1);
        sim::SimTime delivered_at = 0;
        Bytes frame;
        fabric.attach(2, [&](sim::NodeId, Bytes m) {
            delivered_at = sim.now();
            frame = std::move(m);
        });
        Outbox outbox(fabric, node, coalesce, sim::microseconds(100));
        outbox.send(2, wrap(Channel::Hybster, to_bytes("only")));
        enclave::CostMeter meter;
        outbox.flush(meter);
        sim.run();
        return std::make_pair(delivered_at, frame);
    };
    const auto [coalesced_at, coalesced_frame] = run_case(true);
    const auto [plain_at, plain_frame] = run_case(false);
    EXPECT_EQ(coalesced_at, plain_at);
    EXPECT_EQ(coalesced_frame, plain_frame);
    EXPECT_EQ(plain_frame, wrap(Channel::Hybster, to_bytes("only")));
}

// ------------------------------------------------- scatter-gather bundles

TEST(Envelope, BundleZeroLengthMessageRoundTrip) {
    const std::vector<Bytes> frames = {
        Bytes{}, wrap(Channel::Hybster, to_bytes("x")), Bytes{}};
    const Bytes bundle = make_bundle(frames);
    const auto unwrapped = unwrap(bundle);
    ASSERT_TRUE(unwrapped.has_value());
    const auto inner = unbundle(unwrapped->second);
    ASSERT_TRUE(inner.has_value());
    ASSERT_EQ(inner->size(), 3u);
    EXPECT_TRUE((*inner)[0].empty());
    EXPECT_EQ((*inner)[1], frames[1]);
    EXPECT_TRUE((*inner)[2].empty());
}

TEST(Envelope, BundleCountAtU16Limit) {
    // 65535 zero-length members: the count field is at its ceiling and
    // both encoders must agree byte for byte.
    std::vector<Bytes> frames(kMaxBundleMessages);
    const Bytes bundle = make_bundle(frames);
    const auto unwrapped = unwrap(bundle);
    ASSERT_TRUE(unwrapped.has_value());
    const auto inner = unbundle(unwrapped->second);
    ASSERT_TRUE(inner.has_value());
    EXPECT_EQ(inner->size(), kMaxBundleMessages);

    FragmentChain chain;
    std::vector<Bytes> moved(kMaxBundleMessages);
    encode_bundle(chain, std::move(moved));
    EXPECT_EQ(chain.materialize(), bundle);
}

TEST(Envelope, BundleTruncatedLengthPrefixRejectedAsUnit) {
    // Cut the frame two bytes into the second message's length prefix:
    // the whole bundle is rejected — the intact first message is NOT
    // delivered on its own.
    const std::vector<Bytes> frames = {to_bytes("aa"), to_bytes("bb")};
    const Bytes bundle = make_bundle(frames);
    const auto unwrapped = unwrap(bundle);
    ASSERT_TRUE(unwrapped.has_value());
    const ByteView payload = unwrapped->second;
    // payload = u16 count ‖ u32 len ‖ "aa" ‖ u32 len ‖ "bb"
    const Bytes truncated(payload.begin(), payload.begin() + 2 + 4 + 2 + 2);
    EXPECT_FALSE(unbundle(truncated).has_value());
    // truncating inside a message body is rejected the same way
    const Bytes short_body(payload.begin(), payload.begin() + 2 + 4 + 1);
    EXPECT_FALSE(unbundle(short_body).has_value());
}

TEST(Envelope, BundleSplitEncodeRoundTripProperty) {
    // Random message vectors: flatten and chain encodings are
    // byte-identical, and both receive paths (unbundle on the flat
    // frame, take_bundle_messages on the chain) reproduce the inputs.
    Rng rng(0x77a7);
    for (int iter = 0; iter < 50; ++iter) {
        const std::size_t count = 1 + rng.next_below(20);
        std::vector<Bytes> frames;
        frames.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            Bytes m(rng.next_below(300));
            for (auto& b : m) {
                b = static_cast<std::uint8_t>(rng.next_below(256));
            }
            frames.push_back(std::move(m));
        }
        const Bytes reference = make_bundle(frames);

        std::vector<Bytes> moved = frames;
        FragmentChain chain;
        encode_bundle(chain, std::move(moved));
        EXPECT_EQ(chain.size(), reference.size());
        EXPECT_EQ(chain.materialize(), reference);

        std::vector<Bytes> again = frames;
        FragmentChain receive_chain;
        encode_bundle(receive_chain, std::move(again));
        auto taken = take_bundle_messages(std::move(receive_chain));
        ASSERT_TRUE(taken.has_value());
        EXPECT_EQ(*taken, frames);

        const auto unwrapped = unwrap(reference);
        ASSERT_TRUE(unwrapped.has_value());
        const auto inner = unbundle(unwrapped->second);
        ASSERT_TRUE(inner.has_value());
        EXPECT_EQ(*inner, frames);
    }
}

TEST(FragmentChain, TakeBundleMessagesRejectsForeignShape) {
    // A chain that is not an encode_bundle() product is left untouched
    // so the caller can materialize it instead.
    FragmentChain chain;
    chain.append_inline(to_bytes("xy"));
    chain.append_owned(to_bytes("payload"));
    EXPECT_FALSE(take_bundle_messages(std::move(chain)).has_value());
    EXPECT_EQ(chain.fragments().size(), 2u);
    EXPECT_EQ(chain.size(), 2u + 7u);
}

TEST(Fabric, ChainShipsToChainHandlerWithoutMaterializing) {
    sim::Simulator sim;
    sim::Network network(sim);
    Fabric fabric(sim, network);

    const std::vector<Bytes> frames = {
        wrap(Channel::Hybster, to_bytes("p1")),
        wrap(Channel::Hybster, to_bytes("p2"))};
    std::vector<Bytes> received;
    fabric.attach_chain(2, [&](sim::NodeId, sim::FragmentChain chain) {
        auto messages = take_bundle_messages(std::move(chain));
        ASSERT_TRUE(messages.has_value());
        received = std::move(*messages);
    });

    FragmentChain chain = network.acquire_chain();
    std::vector<Bytes> moved = frames;
    encode_bundle(chain, std::move(moved));
    fabric.send_chain(1, 2, std::move(chain));
    sim.run();

    EXPECT_EQ(received, frames);
    EXPECT_EQ(network.wire_stats().frames_zero_copy, 1u);
    EXPECT_EQ(network.wire_stats().materializations, 0u);
}

TEST(Fabric, ChainMaterializesForPlainHandlerByteIdentically) {
    sim::Simulator sim;
    sim::Network network(sim);
    Fabric fabric(sim, network);

    const std::vector<Bytes> frames = {
        wrap(Channel::Hybster, to_bytes("p1")),
        wrap(Channel::Client, to_bytes("p2"))};
    Bytes flat;
    fabric.attach(2, [&](sim::NodeId, Bytes m) { flat = std::move(m); });

    FragmentChain chain = network.acquire_chain();
    std::vector<Bytes> moved = frames;
    encode_bundle(chain, std::move(moved));
    fabric.send_chain(1, 2, std::move(chain));
    sim.run();

    EXPECT_EQ(flat, make_bundle(frames));
    EXPECT_EQ(network.wire_stats().materializations, 1u);
}

TEST(Network, CreditWindowStallsAndPreservesOrder) {
    sim::Simulator sim;
    sim::Network network(sim);
    network.set_credit_window(1);
    Fabric fabric(sim, network);

    std::vector<Bytes> received;
    fabric.attach(2, [&](sim::NodeId, Bytes m) {
        received.push_back(std::move(m));
    });
    fabric.send(1, 2, to_bytes("a"));
    fabric.send(1, 2, to_bytes("b"));
    fabric.send(1, 2, to_bytes("c"));
    sim.run();

    // With one credit per directed pair the second and third send had to
    // wait for a delivery each; everything still arrives, in order.
    ASSERT_EQ(received.size(), 3u);
    EXPECT_EQ(received[0], to_bytes("a"));
    EXPECT_EQ(received[1], to_bytes("b"));
    EXPECT_EQ(received[2], to_bytes("c"));
    EXPECT_EQ(network.wire_stats().credit_stalls, 2u);
}

TEST(Outbox, ZeroCopyFlushMatchesCopyingWire) {
    // The same burst flushed through the copying and the zero-copy
    // coalescing paths must produce byte-identical frames at a plain
    // receiver, at the same simulated time.
    const auto run_case = [](bool zero_copy) {
        sim::Simulator sim;
        sim::Network network(sim);
        Fabric fabric(sim, network);
        sim::Node node(sim, 1, "n", 1);
        std::vector<Bytes> frames;
        sim::SimTime delivered_at = 0;
        fabric.attach(2, [&](sim::NodeId, Bytes m) {
            delivered_at = sim.now();
            frames.push_back(std::move(m));
        });
        Outbox outbox(fabric, node, /*coalesce=*/true, /*record_cost=*/0,
                      zero_copy);
        outbox.send(2, wrap(Channel::Hybster, to_bytes("a")));
        outbox.send(2, wrap(Channel::Hybster, to_bytes("bb")));
        outbox.send(2, wrap(Channel::Hybster, to_bytes("ccc")));
        enclave::CostMeter meter;
        outbox.flush(meter);
        sim.run();
        return std::make_pair(delivered_at, frames);
    };
    const auto [zc_at, zc_frames] = run_case(true);
    const auto [copy_at, copy_frames] = run_case(false);
    EXPECT_EQ(zc_at, copy_at);
    EXPECT_EQ(zc_frames, copy_frames);
}

TEST(Outbox, TransportChargesOnlyStagedBytesOnZeroCopyPath) {
    // Transport profile: per-record entry plus per-byte staging. The
    // copying path stages the whole frame; the zero-copy path stages the
    // inline framing headers only, so its flush completes earlier by the
    // referenced-bytes share of the per-byte cost.
    const auto run_case = [](bool zero_copy) {
        sim::Simulator sim;
        sim::Network network(sim);
        sim::LinkSpec instant;
        instant.latency = sim::LatencyModel::constant(0);
        instant.bandwidth_bits_per_sec = 1e15;
        network.set_default_link(instant);
        Fabric fabric(sim, network);
        sim::Node node(sim, 1, "n", 1);
        sim::SimTime delivered_at = 0;
        fabric.attach(2, [&](sim::NodeId, Bytes) {
            delivered_at = sim.now();
        });
        sim::TransportProfile transport;
        transport.tx_base_ns = 1000.0;
        transport.tx_per_byte_ns = 1.0;
        Outbox outbox(fabric, node, /*coalesce=*/true, /*record_cost=*/0,
                      zero_copy, &transport);
        outbox.send(2, wrap(Channel::Hybster, Bytes(100, 0xaa)));
        outbox.send(2, wrap(Channel::Hybster, Bytes(100, 0xbb)));
        enclave::CostMeter meter;
        outbox.flush(meter);
        sim.run();
        return delivered_at;
    };
    const sim::SimTime copying = run_case(false);
    const sim::SimTime zero_copy = run_case(true);
    // Frame: 3-byte Bundle head + 2 x (4-byte prefix + 101-byte message).
    // Copying stages all 213 bytes; zero-copy stages the 11 header bytes.
    // (±2 time units of wire serialization on top of the metered cost)
    EXPECT_GE(copying, sim::SimTime(1000 + 213));
    EXPECT_LE(copying, sim::SimTime(1000 + 213) + 2);
    EXPECT_GE(zero_copy, sim::SimTime(1000 + 11));
    EXPECT_LE(zero_copy, sim::SimTime(1000 + 11) + 2);
}

}  // namespace
}  // namespace troxy::net
