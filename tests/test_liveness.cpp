// Liveness mechanisms: retransmission timers, fast-read timeouts, view
// changes under every deployment — the paths that only run when
// something already went wrong.
#include <gtest/gtest.h>

#include "apps/echo_service.hpp"
#include "bench_support/cluster.hpp"

namespace troxy {
namespace {

using apps::EchoService;

// Baseline client: a muted leader never orders; the client's retransmit
// broadcast reaches the followers, whose progress timers force a view
// change, and the original invocation completes.
TEST(Liveness, BaselineClientRetransmitTriggersViewChange) {
    bench::BaselineCluster::Params params;
    params.base.seed = 501;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.client_retransmit = sim::milliseconds(600);
    bench::BaselineCluster cluster(params);

    hybster::FaultProfile mute;
    mute.mute_agreement = true;
    cluster.host(0).replica().set_faults(mute);

    auto& client = cluster.add_client();
    bool done = false;
    client.start([&]() {
        client.invoke(EchoService::make_write(1, 64), false,
                      [&](Bytes) { done = true; });
    });
    cluster.simulator().run_until(sim::seconds(30));
    EXPECT_TRUE(done);
    EXPECT_GT(cluster.host(1).replica().view(), 0u);
}

// Troxy vote timer: replicas that withhold replies past the vote timeout
// trigger retransmission; when they recover, the request completes
// without client involvement.
TEST(Liveness, TroxyVoteRetransmitAfterRecovery) {
    bench::TroxyCluster::Params params;
    params.base.seed = 502;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    params.host.vote_timeout = sim::milliseconds(300);
    bench::TroxyCluster cluster(std::move(params));

    // Both other replicas drop replies: the vote cannot complete (local
    // reply alone is f, not f+1).
    hybster::FaultProfile drop;
    drop.drop_replies = true;
    cluster.host(1).replica().set_faults(drop);
    cluster.host(2).replica().set_faults(drop);

    auto& client = cluster.add_client(0);
    bool done = false;
    client.start([&]() {
        client.send(EchoService::make_write(1, 64),
                    [&](Bytes) { done = true; });
    });
    cluster.simulator().run_until(sim::seconds(2));
    EXPECT_FALSE(done) << "vote must be stuck while replies are dropped";

    // One replica recovers; the next retransmit re-delivers its reply
    // (the replica resends the stored reply for the duplicate request).
    cluster.host(1).replica().set_faults(hybster::FaultProfile{});
    cluster.simulator().run_until(sim::seconds(10));
    EXPECT_TRUE(done);
}

// Fast-read timeout: a crashed remote Troxy cannot stall a fast read —
// the timeout falls back to ordering and the client still gets the
// correct (fresh) value.
TEST(Liveness, FastReadTimeoutFallsBackToOrdering) {
    bench::TroxyCluster::Params params;
    params.base.seed = 503;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    params.host.fast_read_timeout = sim::milliseconds(30);
    bench::TroxyCluster cluster(std::move(params));
    auto& client = cluster.add_client(0);

    // Warm the cache, then crash replica 1 AND replica 2's cache path by
    // crashing their hosts entirely — remote queries go unanswered, but
    // ordering still works with... no: with 2 crashed replicas nothing
    // works. Crash exactly one; the fast read times out only when the
    // random pick hits the crashed one, so loop a few reads.
    int phase = 0;
    client.start([&]() {
        client.send(EchoService::make_write(4, 48), [&](Bytes) {
            client.send(EchoService::make_read(4, 32, 64),
                        [&](Bytes) { phase = 1; });
        });
    });
    cluster.simulator().run_until(sim::seconds(5));
    ASSERT_EQ(phase, 1);

    hybster::FaultProfile crash;
    crash.crashed = true;
    cluster.host(2).set_faults(crash);

    int correct = 0;
    constexpr int kReads = 8;
    std::function<void(int)> loop;
    loop = [&](int remaining) {
        if (remaining == 0) return;
        client.send(EchoService::make_read(4, 32, 64),
                    [&, remaining](Bytes reply) {
                        if (reply ==
                            EchoService::expected_read_reply(4, 1, 64)) {
                            ++correct;
                        }
                        loop(remaining - 1);
                    });
    };
    loop(kReads);
    cluster.simulator().run_until(sim::seconds(30));
    EXPECT_EQ(correct, kReads);

    // At least one of those reads must have hit the crashed replica and
    // resolved via timeout fallback.
    std::uint64_t conflicts = 0;
    conflicts += cluster.host(0).troxy().status().fast_read_conflicts;
    EXPECT_GE(conflicts, 1u);
}

// PBFT behind Prophecy: leader crash mid-session, middlebox retransmits,
// view change completes, the HTTP client notices nothing.
TEST(Liveness, ProphecySurvivesPbftViewChange) {
    bench::ProphecyCluster::Params params;
    params.base.seed = 504;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    bench::ProphecyCluster cluster(params);
    auto& client = cluster.add_client();

    bool warm = false;
    client.start([&]() {
        client.send(EchoService::make_write(1, 64),
                    [&](Bytes) { warm = true; });
    });
    cluster.simulator().run_until(sim::seconds(5));
    ASSERT_TRUE(warm);

    hybster::FaultProfile crash;
    crash.crashed = true;
    cluster.replica(0).set_faults(crash);  // PBFT view-0 leader

    bool done = false;
    client.start([&]() {});  // no-op; connection already up
    client.send(EchoService::make_write(1, 64),
                [&](Bytes) { done = true; });
    cluster.simulator().run_until(sim::seconds(40));
    EXPECT_TRUE(done);
    EXPECT_GT(cluster.replica(1).view(), 0u);
}

// The progress timer must be quiet when there is nothing pending: an
// idle cluster executes no view changes, ever.
TEST(Liveness, IdleClusterNeverSuspectsAnyone) {
    bench::TroxyCluster::Params params;
    params.base.seed = 505;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    bench::TroxyCluster cluster(std::move(params));
    auto& client = cluster.add_client();

    bool done = false;
    client.start([&]() {
        client.send(EchoService::make_write(1, 64),
                    [&](Bytes) { done = true; });
    });
    // A long quiet period after one request.
    cluster.simulator().run_until(sim::seconds(120));
    ASSERT_TRUE(done);
    for (int r = 0; r < cluster.n(); ++r) {
        EXPECT_EQ(cluster.host(r).replica().view(), 0u);
        EXPECT_EQ(cluster.host(r).replica().view_changes(), 0u);
    }
}

}  // namespace
}  // namespace troxy
