#include <gtest/gtest.h>

#include <functional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "sim/cost.hpp"
#include "sim/fault_plan.hpp"
#include "sim/lanes.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/pool.hpp"
#include "sim/simulator.hpp"

namespace troxy::sim {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
    Simulator sim;
    std::vector<int> order;
    sim.after(30, [&] { order.push_back(3); });
    sim.after(10, [&] { order.push_back(1); });
    sim.after(20, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, TiesBreakFifo) {
    Simulator sim;
    std::vector<int> order;
    sim.after(5, [&] { order.push_back(1); });
    sim.after(5, [&] { order.push_back(2); });
    sim.after(5, [&] { order.push_back(3); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, HandlersCanScheduleMore) {
    Simulator sim;
    int count = 0;
    std::function<void()> tick = [&]() {
        if (++count < 5) sim.after(10, tick);
    };
    sim.after(10, tick);
    sim.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(sim.now(), 50u);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
    Simulator sim;
    int executed = 0;
    sim.after(10, [&] { ++executed; });
    sim.after(20, [&] { ++executed; });
    sim.after(30, [&] { ++executed; });
    sim.run_until(20);
    EXPECT_EQ(executed, 2);
    EXPECT_EQ(sim.now(), 20u);
    EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Node, SingleCoreSerializesWork) {
    Simulator sim;
    Node node(sim, 1, "n", 1);
    std::vector<SimTime> completions;
    node.exec(100, [&] { completions.push_back(sim.now()); });
    node.exec(100, [&] { completions.push_back(sim.now()); });
    sim.run();
    ASSERT_EQ(completions.size(), 2u);
    EXPECT_EQ(completions[0], 100u);
    EXPECT_EQ(completions[1], 200u);  // queued behind the first
}

TEST(Node, MultiCoreRunsInParallel) {
    Simulator sim;
    Node node(sim, 1, "n", 2);
    std::vector<SimTime> completions;
    node.exec(100, [&] { completions.push_back(sim.now()); });
    node.exec(100, [&] { completions.push_back(sim.now()); });
    node.exec(100, [&] { completions.push_back(sim.now()); });
    sim.run();
    ASSERT_EQ(completions.size(), 3u);
    EXPECT_EQ(completions[0], 100u);
    EXPECT_EQ(completions[1], 100u);  // second core
    EXPECT_EQ(completions[2], 200u);  // queued
}

TEST(Node, BusyTimeAccumulates) {
    Simulator sim;
    Node node(sim, 1, "n", 4);
    node.exec(50, [] {});
    node.charge(70);
    sim.run();
    EXPECT_EQ(node.busy_time(), 120u);
}

TEST(Network, DeliversAfterLatency) {
    Simulator sim;
    Network network(sim);
    LinkSpec spec;
    spec.latency = LatencyModel::constant(milliseconds(5));
    spec.bandwidth_bits_per_sec = 1e12;  // effectively no serialization
    network.set_default_link(spec);

    SimTime delivered = 0;
    network.send(1, 2, 10, [&] { delivered = sim.now(); });
    sim.run();
    EXPECT_GE(delivered, milliseconds(5));
    EXPECT_LT(delivered, milliseconds(6));
}

TEST(Network, SerializationDelayScalesWithSize) {
    Simulator sim;
    Network network(sim);
    LinkSpec spec;
    spec.latency = LatencyModel::constant(0);
    spec.bandwidth_bits_per_sec = 1e9;  // 1 Gbps
    network.set_default_link(spec);

    SimTime small = 0, large = 0;
    network.send(1, 2, 100, [&] { small = sim.now(); });
    network.send(3, 4, 1'000'000, [&] { large = sim.now(); });
    sim.run();
    // 1 MB at 1 Gbps ≈ 8 ms.
    EXPECT_GT(large, milliseconds(7));
    EXPECT_LT(small, milliseconds(1));
}

TEST(Network, FifoPerDirectedPair) {
    Simulator sim(5);
    Network network(sim);
    LinkSpec spec;
    // High jitter would reorder without the FIFO guarantee.
    spec.latency = LatencyModel::normal(milliseconds(10), milliseconds(5),
                                        milliseconds(1));
    network.set_default_link(spec);

    std::vector<int> order;
    for (int i = 0; i < 20; ++i) {
        network.send(1, 2, 10, [&order, i] { order.push_back(i); });
    }
    sim.run();
    for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Network, WanLatencyDistribution) {
    Simulator sim(17);
    Network network(sim);
    network.set_default_link(LinkSpec::wan());

    std::vector<SimTime> deliveries;
    // Use distinct sender nodes so FIFO does not couple the samples.
    for (std::uint32_t i = 0; i < 400; ++i) {
        network.send(100 + i, 2, 10,
                     [&deliveries, &sim] { deliveries.push_back(sim.now()); });
    }
    sim.run();
    double sum = 0;
    for (const SimTime t : deliveries) sum += to_millis(t);
    const double mean = sum / static_cast<double>(deliveries.size());
    EXPECT_NEAR(mean, 100.0, 5.0);  // 100 ± 20 ms distribution
}

TEST(Network, SharedNicSerializesMachineTraffic) {
    Simulator sim;
    Network network(sim);
    LinkSpec spec;
    spec.latency = LatencyModel::constant(0);
    network.set_default_link(spec);
    // Both senders on one machine with 1 Gbps.
    network.set_nic_group(1, 7, 1e9);
    network.set_nic_group(2, 7, 1e9);

    SimTime first = 0, second = 0;
    network.send(1, 10, 1'000'000, [&] { first = sim.now(); });
    network.send(2, 11, 1'000'000, [&] { second = sim.now(); });
    sim.run();
    // Each 1 MB transfer needs ~8 ms; sharing the NIC serializes them.
    EXPECT_GT(second, milliseconds(15));
}

TEST(Network, LossDropsProbabilisticallyAndCounts) {
    Simulator sim(9);
    Network network(sim);
    LinkSpec spec;
    spec.latency = LatencyModel::constant(0);
    network.set_default_link(spec);

    network.set_loss_bidirectional(1, 2, 1.0);
    int delivered = 0;
    for (int i = 0; i < 10; ++i) {
        network.send(1, 2, 100, [&] { ++delivered; });
    }
    sim.run();
    EXPECT_EQ(delivered, 0);
    EXPECT_EQ(network.drops().by_loss, 10u);
    EXPECT_EQ(network.drops().bytes, 1000u);
    // Sends are counted even when the fault layer drops them, so replay
    // traces line up regardless of where a message dies.
    EXPECT_EQ(network.messages_sent(), 10u);

    network.set_loss_bidirectional(1, 2, 0.0);  // clears the window
    network.send(1, 2, 100, [&] { ++delivered; });
    sim.run();
    EXPECT_EQ(delivered, 1);
}

TEST(Network, LinkDownDropsUntilHealed) {
    Simulator sim;
    Network network(sim);
    LinkSpec spec;
    spec.latency = LatencyModel::constant(0);
    network.set_default_link(spec);

    network.fail_link_bidirectional(1, 2);
    EXPECT_FALSE(network.reachable(1, 2));
    EXPECT_FALSE(network.reachable(2, 1));
    EXPECT_TRUE(network.reachable(1, 3));

    int delivered = 0;
    network.send(1, 2, 50, [&] { ++delivered; });
    network.send(2, 1, 50, [&] { ++delivered; });
    sim.run();
    EXPECT_EQ(delivered, 0);
    EXPECT_EQ(network.drops().by_link_down, 2u);

    network.heal_link_bidirectional(1, 2);
    EXPECT_TRUE(network.reachable(1, 2));
    network.send(1, 2, 50, [&] { ++delivered; });
    sim.run();
    EXPECT_EQ(delivered, 1);
}

TEST(Network, PartitionCutsAcrossGroupsOnly) {
    Simulator sim;
    Network network(sim);
    LinkSpec spec;
    spec.latency = LatencyModel::constant(0);
    network.set_default_link(spec);

    network.partition("split", {{1, 2}, {3}});
    EXPECT_TRUE(network.reachable(1, 2));    // same group
    EXPECT_FALSE(network.reachable(1, 3));   // across groups
    EXPECT_FALSE(network.reachable(3, 2));
    EXPECT_TRUE(network.reachable(1, 100));  // unlisted nodes unaffected
    EXPECT_TRUE(network.reachable(100, 3));

    int delivered = 0;
    network.send(1, 3, 10, [&] { ++delivered; });
    network.send(1, 2, 10, [&] { ++delivered; });
    sim.run();
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(network.drops().by_partition, 1u);

    network.heal_partition("split");
    EXPECT_TRUE(network.reachable(1, 3));
    network.send(1, 3, 10, [&] { ++delivered; });
    sim.run();
    EXPECT_EQ(delivered, 2);
}

TEST(FaultPlan, RandomPlanIsSeedDeterministic) {
    FaultPlan::RandomOptions options;
    options.start = seconds(1);
    options.heal_by = seconds(8);
    options.hosts = 3;
    options.nodes = {1, 2, 3};

    Rng a(77), b(77), c(78);
    const FaultPlan plan_a = FaultPlan::random(a, options);
    const FaultPlan plan_b = FaultPlan::random(b, options);
    const FaultPlan plan_c = FaultPlan::random(c, options);
    EXPECT_EQ(plan_a.describe(), plan_b.describe());
    EXPECT_NE(plan_a.describe(), plan_c.describe());

    // Every fault is healed by heal_by: crashes restarted, partitions and
    // links healed, loss windows cleared.
    for (const FaultEvent& event : plan_a.events()) {
        EXPECT_LE(event.at, seconds(8)) << event.describe();
    }
}

TEST(CostProfile, JavaSlowerThanNative) {
    const CostProfile java = CostProfile::java();
    const CostProfile native = CostProfile::native();
    EXPECT_GT(java.mac(4096), native.mac(4096));
    EXPECT_GT(java.aead(4096), native.aead(4096));
    EXPECT_GT(java.hash(4096), native.hash(4096));
    // The gap must widen with payload size (per-byte dominance).
    const double small_ratio = static_cast<double>(java.mac(64)) /
                               static_cast<double>(native.mac(64));
    const double large_ratio = static_cast<double>(java.mac(8192)) /
                               static_cast<double>(native.mac(8192));
    EXPECT_GT(large_ratio, small_ratio * 0.9);
}

TEST(EnclaveCosts, SgxProfileHasTransitions) {
    const EnclaveCosts sgx = EnclaveCosts::sgx_v1();
    EXPECT_GT(sgx.ecall_transition_ns, 0.0);
    EXPECT_GT(sgx.epc_limit_bytes, 0u);
    const EnclaveCosts free = EnclaveCosts::free();
    EXPECT_EQ(free.ecall_transition_ns, 0.0);
}

TEST(LaneSchedule, GreedyPicksEarliestFreeLaneLowestIndexOnTies) {
    LaneSchedule schedule(3);
    EXPECT_EQ(schedule.add(Duration{10}), 0u);  // all idle → lane 0
    EXPECT_EQ(schedule.add(Duration{5}), 1u);   // next idle lane
    EXPECT_EQ(schedule.add(Duration{5}), 2u);
    // Lanes 1 and 2 are tied at 5; the lower index wins.
    EXPECT_EQ(schedule.add(Duration{1}), 1u);
    // Lane 2 (at 5) is now the earliest-free.
    EXPECT_EQ(schedule.add(Duration{1}), 2u);
    EXPECT_EQ(schedule.items(), 5u);
}

TEST(LaneSchedule, MakespanIsBusiestLane) {
    LaneSchedule schedule(2);
    schedule.add(Duration{30});  // lane 0
    schedule.add(Duration{10});  // lane 1
    schedule.add(Duration{10});  // lane 1 again (20 < 30)
    EXPECT_EQ(schedule.makespan(), Duration{30});
    EXPECT_EQ(schedule.serial_sum(), Duration{50});
    EXPECT_EQ(schedule.lanes_used(), 2u);
}

TEST(LaneSchedule, SingleLaneMakespanEqualsSerialSum) {
    LaneSchedule schedule(1);
    for (int i = 1; i <= 7; ++i) {
        EXPECT_EQ(schedule.add(Duration{static_cast<Duration>(i)}), 0u);
    }
    EXPECT_EQ(schedule.makespan(), schedule.serial_sum());
    EXPECT_EQ(schedule.serial_sum(), Duration{28});
    EXPECT_EQ(schedule.lanes_used(), 1u);
}

TEST(LaneSchedule, AddToLanePinsConflictChains) {
    LaneSchedule schedule(4);
    const std::size_t lane = schedule.add(Duration{10});
    schedule.add_to_lane(lane, Duration{10});  // same chain stays put
    schedule.add_to_lane(lane, Duration{10});
    EXPECT_EQ(schedule.makespan(), Duration{30});
    EXPECT_EQ(schedule.lanes_used(), 1u);
    // Independent work still lands elsewhere.
    EXPECT_NE(schedule.add(Duration{5}), lane);
}

TEST(LaneSchedule, ZeroLanesClampsToOne) {
    LaneSchedule schedule(0);
    EXPECT_EQ(schedule.lanes(), 1u);
    schedule.add(Duration{3});
    EXPECT_EQ(schedule.makespan(), Duration{3});
}

TEST(LatencyModel, ConstantAndNormal) {
    Rng rng(3);
    const LatencyModel constant = LatencyModel::constant(milliseconds(10));
    EXPECT_EQ(constant.sample(rng), milliseconds(10));

    const LatencyModel normal =
        LatencyModel::normal(milliseconds(100), milliseconds(20),
                             milliseconds(50));
    for (int i = 0; i < 1000; ++i) {
        EXPECT_GE(normal.sample(rng), milliseconds(50));  // floor holds
    }
}


// ------------------------------------------------------ scheduler engine

// Differential storm: the calendar queue must replay every seed
// identically to the binary-heap reference engine — same executed order,
// same (time, id) trace — across supercritical same-time bursts, far
// timers beyond the wheel horizon, and run_until windows (the mix that
// exercises rebuilds, far-list migration and the in-bucket tie-break).
TEST(Simulator, CalendarMatchesBinaryHeapOnStormSeeds) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        std::vector<std::pair<SimTime, int>> traces[2];
        std::uint64_t executed[2] = {0, 0};
        for (int which = 0; which < 2; ++which) {
            const auto engine = which == 0 ? Simulator::Scheduler::BinaryHeap
                                           : Simulator::Scheduler::Calendar;
            Simulator sim(seed, engine);
            auto& trace = traces[which];
            Rng gen(seed * 77 + 1);
            int next_id = 0;
            long budget = 120000;
            auto schedule_one = [&](auto&& self) -> void {
                if (budget-- <= 0) return;
                const int id = next_id++;
                SimTime when;
                switch (gen.next() % 16) {
                    case 0:
                    case 1:
                    case 2: when = sim.now(); break;  // same-instant burst
                    case 3:
                    case 4: when = sim.now() + gen.next() % 5; break;
                    case 5:
                    case 6:
                    case 7:
                        when = sim.now() + 1000 + gen.next() % 5000;
                        break;
                    case 8:
                    case 9:
                        when = sim.now() + 100000 + gen.next() % 100000;
                        break;
                    case 10:  // far beyond any wheel horizon
                        when = sim.now() + 2000000000ULL;
                        break;
                    case 11:
                        when = sim.now() + 50000000 + gen.next() % 1000;
                        break;
                    default: when = sim.now() + gen.next() % 1000000; break;
                }
                sim.at(when, [&, id] {
                    trace.emplace_back(sim.now(), id);
                    const int kids = static_cast<int>(gen.next() % 4);
                    for (int k = 0; k < kids; ++k) self(self);
                });
            };
            for (int i = 0; i < 200; ++i) schedule_one(schedule_one);
            // Window boundaries interleave run_until bookkeeping with the
            // storm, as real experiments do.
            for (SimTime w = 1000000; w <= 50000000; w += 1000000) {
                sim.run_until(w);
            }
            sim.run();
            executed[which] = sim.executed_events();
        }
        EXPECT_EQ(executed[0], executed[1]) << "seed " << seed;
        ASSERT_EQ(traces[0], traces[1]) << "seed " << seed;
    }
}

TEST(Simulator, CalendarGrowsAndRoutesFarEvents) {
    Simulator sim;
    std::uint64_t executed = 0;
    SimTime last = 0;
    // 10k events spread over 10 seconds: far beyond the initial 64-bucket
    // wheel horizon, forcing both growth rebuilds and far-list routing.
    Rng gen(7);
    for (int i = 0; i < 10000; ++i) {
        const SimTime when = gen.next() % static_cast<SimTime>(seconds(10));
        sim.at(when, [&, when] {
            EXPECT_GE(when, last);
            last = when;
            ++executed;
        });
    }
    sim.run();
    EXPECT_EQ(executed, 10000u);
    const auto& stats = sim.scheduler_stats();
    EXPECT_GT(stats.rebuilds, 0u);
    EXPECT_GT(stats.far_events, 0u);
    EXPECT_GT(stats.buckets, std::size_t{64});
}

TEST(Simulator, SlabRecyclesEventNodes) {
    Simulator sim;
    // Sequential chains: after the first link every node should come from
    // the freelist, not a fresh slab carve.
    int remaining = 1000;
    std::function<void()> tick = [&] {
        if (--remaining > 0) sim.after(10, tick);
    };
    sim.after(10, tick);
    sim.run();
    const auto& stats = sim.scheduler_stats();
    EXPECT_EQ(stats.node_allocs + stats.node_reuses, 1000u);
    EXPECT_GE(stats.node_reuses, 998u);
}

TEST(EventFn, InlineBoundaryAndHeapSpill) {
    struct Small {
        unsigned char pad[EventFn::kInlineSize];
        void operator()() {}
    };
    struct Large {
        unsigned char pad[EventFn::kInlineSize + 1];
        void operator()() {}
    };
    EventFn small{Small{}};
    EventFn large{Large{}};
    EXPECT_FALSE(small.on_heap());
    EXPECT_TRUE(large.on_heap());

    Simulator sim;
    sim.after(1, Small{});
    sim.after(1, Large{});
    sim.run();
    EXPECT_EQ(sim.scheduler_stats().inline_callbacks, 1u);
    EXPECT_EQ(sim.scheduler_stats().heap_callbacks, 1u);
}

// Regression for the seed engine's step(): the popped callback must be
// executed in place, never copied out of the queue. A copy-counting
// callable (which std::function would have to copy) proves the pop path
// is copy-free; EventFn being move-only makes a regression a compile
// error, and this test pins the runtime behaviour too.
TEST(Simulator, PopExecutesCallbackWithoutCopy) {
    static int copies;
    static int invocations;
    copies = 0;
    invocations = 0;
    struct Counting {
        unsigned char pad[32] = {};  // representative capture, inline-size
        Counting() = default;
        Counting(const Counting&) { ++copies; }
        Counting(Counting&&) noexcept = default;
        void operator()() { ++invocations; }
    };
    Simulator sim;
    for (int i = 0; i < 100; ++i) sim.after(i, Counting{});
    sim.run();
    EXPECT_EQ(invocations, 100);
    EXPECT_EQ(copies, 0);
}

TEST(BufferPool, RecyclesByCapacityClass) {
    BufferPool pool;
    Bytes a = pool.acquire(100);  // class 256
    EXPECT_EQ(a.size(), 100u);
    EXPECT_GE(a.capacity(), 256u);
    EXPECT_EQ(pool.stats().misses, 1u);
    pool.release(std::move(a));
    EXPECT_EQ(pool.stats().recycled, 1u);

    Bytes b = pool.acquire(200);  // same class: served from stock
    EXPECT_EQ(b.size(), 200u);
    EXPECT_EQ(pool.stats().hits, 1u);

    Bytes c = pool.acquire_empty(1000);  // class 1024, empty for appends
    EXPECT_TRUE(c.empty());
    EXPECT_GE(c.capacity(), 1000u);
    EXPECT_EQ(pool.stats().misses, 2u);
}

TEST(BufferPool, OversizeAndTinyBuffersAreDiscarded) {
    BufferPool pool;
    Bytes oversize(BufferPool::kClassSizes.back() * 2 + 1);
    EXPECT_FALSE(pool.release_counted(std::move(oversize)));
    Bytes tiny;
    tiny.reserve(16);  // below the smallest class
    EXPECT_FALSE(pool.release_counted(std::move(tiny)));
    EXPECT_EQ(pool.stats().discarded, 2u);
    EXPECT_EQ(pool.stats().recycled, 0u);
}

}  // namespace
}  // namespace troxy::sim
