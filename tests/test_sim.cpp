#include <gtest/gtest.h>

#include "sim/cost.hpp"
#include "sim/fault_plan.hpp"
#include "sim/lanes.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"

namespace troxy::sim {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
    Simulator sim;
    std::vector<int> order;
    sim.after(30, [&] { order.push_back(3); });
    sim.after(10, [&] { order.push_back(1); });
    sim.after(20, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, TiesBreakFifo) {
    Simulator sim;
    std::vector<int> order;
    sim.after(5, [&] { order.push_back(1); });
    sim.after(5, [&] { order.push_back(2); });
    sim.after(5, [&] { order.push_back(3); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, HandlersCanScheduleMore) {
    Simulator sim;
    int count = 0;
    std::function<void()> tick = [&]() {
        if (++count < 5) sim.after(10, tick);
    };
    sim.after(10, tick);
    sim.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(sim.now(), 50u);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
    Simulator sim;
    int executed = 0;
    sim.after(10, [&] { ++executed; });
    sim.after(20, [&] { ++executed; });
    sim.after(30, [&] { ++executed; });
    sim.run_until(20);
    EXPECT_EQ(executed, 2);
    EXPECT_EQ(sim.now(), 20u);
    EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Node, SingleCoreSerializesWork) {
    Simulator sim;
    Node node(sim, 1, "n", 1);
    std::vector<SimTime> completions;
    node.exec(100, [&] { completions.push_back(sim.now()); });
    node.exec(100, [&] { completions.push_back(sim.now()); });
    sim.run();
    ASSERT_EQ(completions.size(), 2u);
    EXPECT_EQ(completions[0], 100u);
    EXPECT_EQ(completions[1], 200u);  // queued behind the first
}

TEST(Node, MultiCoreRunsInParallel) {
    Simulator sim;
    Node node(sim, 1, "n", 2);
    std::vector<SimTime> completions;
    node.exec(100, [&] { completions.push_back(sim.now()); });
    node.exec(100, [&] { completions.push_back(sim.now()); });
    node.exec(100, [&] { completions.push_back(sim.now()); });
    sim.run();
    ASSERT_EQ(completions.size(), 3u);
    EXPECT_EQ(completions[0], 100u);
    EXPECT_EQ(completions[1], 100u);  // second core
    EXPECT_EQ(completions[2], 200u);  // queued
}

TEST(Node, BusyTimeAccumulates) {
    Simulator sim;
    Node node(sim, 1, "n", 4);
    node.exec(50, [] {});
    node.charge(70);
    sim.run();
    EXPECT_EQ(node.busy_time(), 120u);
}

TEST(Network, DeliversAfterLatency) {
    Simulator sim;
    Network network(sim);
    LinkSpec spec;
    spec.latency = LatencyModel::constant(milliseconds(5));
    spec.bandwidth_bits_per_sec = 1e12;  // effectively no serialization
    network.set_default_link(spec);

    SimTime delivered = 0;
    network.send(1, 2, 10, [&] { delivered = sim.now(); });
    sim.run();
    EXPECT_GE(delivered, milliseconds(5));
    EXPECT_LT(delivered, milliseconds(6));
}

TEST(Network, SerializationDelayScalesWithSize) {
    Simulator sim;
    Network network(sim);
    LinkSpec spec;
    spec.latency = LatencyModel::constant(0);
    spec.bandwidth_bits_per_sec = 1e9;  // 1 Gbps
    network.set_default_link(spec);

    SimTime small = 0, large = 0;
    network.send(1, 2, 100, [&] { small = sim.now(); });
    network.send(3, 4, 1'000'000, [&] { large = sim.now(); });
    sim.run();
    // 1 MB at 1 Gbps ≈ 8 ms.
    EXPECT_GT(large, milliseconds(7));
    EXPECT_LT(small, milliseconds(1));
}

TEST(Network, FifoPerDirectedPair) {
    Simulator sim(5);
    Network network(sim);
    LinkSpec spec;
    // High jitter would reorder without the FIFO guarantee.
    spec.latency = LatencyModel::normal(milliseconds(10), milliseconds(5),
                                        milliseconds(1));
    network.set_default_link(spec);

    std::vector<int> order;
    for (int i = 0; i < 20; ++i) {
        network.send(1, 2, 10, [&order, i] { order.push_back(i); });
    }
    sim.run();
    for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Network, WanLatencyDistribution) {
    Simulator sim(17);
    Network network(sim);
    network.set_default_link(LinkSpec::wan());

    std::vector<SimTime> deliveries;
    // Use distinct sender nodes so FIFO does not couple the samples.
    for (std::uint32_t i = 0; i < 400; ++i) {
        network.send(100 + i, 2, 10,
                     [&deliveries, &sim] { deliveries.push_back(sim.now()); });
    }
    sim.run();
    double sum = 0;
    for (const SimTime t : deliveries) sum += to_millis(t);
    const double mean = sum / static_cast<double>(deliveries.size());
    EXPECT_NEAR(mean, 100.0, 5.0);  // 100 ± 20 ms distribution
}

TEST(Network, SharedNicSerializesMachineTraffic) {
    Simulator sim;
    Network network(sim);
    LinkSpec spec;
    spec.latency = LatencyModel::constant(0);
    network.set_default_link(spec);
    // Both senders on one machine with 1 Gbps.
    network.set_nic_group(1, 7, 1e9);
    network.set_nic_group(2, 7, 1e9);

    SimTime first = 0, second = 0;
    network.send(1, 10, 1'000'000, [&] { first = sim.now(); });
    network.send(2, 11, 1'000'000, [&] { second = sim.now(); });
    sim.run();
    // Each 1 MB transfer needs ~8 ms; sharing the NIC serializes them.
    EXPECT_GT(second, milliseconds(15));
}

TEST(Network, LossDropsProbabilisticallyAndCounts) {
    Simulator sim(9);
    Network network(sim);
    LinkSpec spec;
    spec.latency = LatencyModel::constant(0);
    network.set_default_link(spec);

    network.set_loss_bidirectional(1, 2, 1.0);
    int delivered = 0;
    for (int i = 0; i < 10; ++i) {
        network.send(1, 2, 100, [&] { ++delivered; });
    }
    sim.run();
    EXPECT_EQ(delivered, 0);
    EXPECT_EQ(network.drops().by_loss, 10u);
    EXPECT_EQ(network.drops().bytes, 1000u);
    // Sends are counted even when the fault layer drops them, so replay
    // traces line up regardless of where a message dies.
    EXPECT_EQ(network.messages_sent(), 10u);

    network.set_loss_bidirectional(1, 2, 0.0);  // clears the window
    network.send(1, 2, 100, [&] { ++delivered; });
    sim.run();
    EXPECT_EQ(delivered, 1);
}

TEST(Network, LinkDownDropsUntilHealed) {
    Simulator sim;
    Network network(sim);
    LinkSpec spec;
    spec.latency = LatencyModel::constant(0);
    network.set_default_link(spec);

    network.fail_link_bidirectional(1, 2);
    EXPECT_FALSE(network.reachable(1, 2));
    EXPECT_FALSE(network.reachable(2, 1));
    EXPECT_TRUE(network.reachable(1, 3));

    int delivered = 0;
    network.send(1, 2, 50, [&] { ++delivered; });
    network.send(2, 1, 50, [&] { ++delivered; });
    sim.run();
    EXPECT_EQ(delivered, 0);
    EXPECT_EQ(network.drops().by_link_down, 2u);

    network.heal_link_bidirectional(1, 2);
    EXPECT_TRUE(network.reachable(1, 2));
    network.send(1, 2, 50, [&] { ++delivered; });
    sim.run();
    EXPECT_EQ(delivered, 1);
}

TEST(Network, PartitionCutsAcrossGroupsOnly) {
    Simulator sim;
    Network network(sim);
    LinkSpec spec;
    spec.latency = LatencyModel::constant(0);
    network.set_default_link(spec);

    network.partition("split", {{1, 2}, {3}});
    EXPECT_TRUE(network.reachable(1, 2));    // same group
    EXPECT_FALSE(network.reachable(1, 3));   // across groups
    EXPECT_FALSE(network.reachable(3, 2));
    EXPECT_TRUE(network.reachable(1, 100));  // unlisted nodes unaffected
    EXPECT_TRUE(network.reachable(100, 3));

    int delivered = 0;
    network.send(1, 3, 10, [&] { ++delivered; });
    network.send(1, 2, 10, [&] { ++delivered; });
    sim.run();
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(network.drops().by_partition, 1u);

    network.heal_partition("split");
    EXPECT_TRUE(network.reachable(1, 3));
    network.send(1, 3, 10, [&] { ++delivered; });
    sim.run();
    EXPECT_EQ(delivered, 2);
}

TEST(FaultPlan, RandomPlanIsSeedDeterministic) {
    FaultPlan::RandomOptions options;
    options.start = seconds(1);
    options.heal_by = seconds(8);
    options.hosts = 3;
    options.nodes = {1, 2, 3};

    Rng a(77), b(77), c(78);
    const FaultPlan plan_a = FaultPlan::random(a, options);
    const FaultPlan plan_b = FaultPlan::random(b, options);
    const FaultPlan plan_c = FaultPlan::random(c, options);
    EXPECT_EQ(plan_a.describe(), plan_b.describe());
    EXPECT_NE(plan_a.describe(), plan_c.describe());

    // Every fault is healed by heal_by: crashes restarted, partitions and
    // links healed, loss windows cleared.
    for (const FaultEvent& event : plan_a.events()) {
        EXPECT_LE(event.at, seconds(8)) << event.describe();
    }
}

TEST(CostProfile, JavaSlowerThanNative) {
    const CostProfile java = CostProfile::java();
    const CostProfile native = CostProfile::native();
    EXPECT_GT(java.mac(4096), native.mac(4096));
    EXPECT_GT(java.aead(4096), native.aead(4096));
    EXPECT_GT(java.hash(4096), native.hash(4096));
    // The gap must widen with payload size (per-byte dominance).
    const double small_ratio = static_cast<double>(java.mac(64)) /
                               static_cast<double>(native.mac(64));
    const double large_ratio = static_cast<double>(java.mac(8192)) /
                               static_cast<double>(native.mac(8192));
    EXPECT_GT(large_ratio, small_ratio * 0.9);
}

TEST(EnclaveCosts, SgxProfileHasTransitions) {
    const EnclaveCosts sgx = EnclaveCosts::sgx_v1();
    EXPECT_GT(sgx.ecall_transition_ns, 0.0);
    EXPECT_GT(sgx.epc_limit_bytes, 0u);
    const EnclaveCosts free = EnclaveCosts::free();
    EXPECT_EQ(free.ecall_transition_ns, 0.0);
}

TEST(LaneSchedule, GreedyPicksEarliestFreeLaneLowestIndexOnTies) {
    LaneSchedule schedule(3);
    EXPECT_EQ(schedule.add(Duration{10}), 0u);  // all idle → lane 0
    EXPECT_EQ(schedule.add(Duration{5}), 1u);   // next idle lane
    EXPECT_EQ(schedule.add(Duration{5}), 2u);
    // Lanes 1 and 2 are tied at 5; the lower index wins.
    EXPECT_EQ(schedule.add(Duration{1}), 1u);
    // Lane 2 (at 5) is now the earliest-free.
    EXPECT_EQ(schedule.add(Duration{1}), 2u);
    EXPECT_EQ(schedule.items(), 5u);
}

TEST(LaneSchedule, MakespanIsBusiestLane) {
    LaneSchedule schedule(2);
    schedule.add(Duration{30});  // lane 0
    schedule.add(Duration{10});  // lane 1
    schedule.add(Duration{10});  // lane 1 again (20 < 30)
    EXPECT_EQ(schedule.makespan(), Duration{30});
    EXPECT_EQ(schedule.serial_sum(), Duration{50});
    EXPECT_EQ(schedule.lanes_used(), 2u);
}

TEST(LaneSchedule, SingleLaneMakespanEqualsSerialSum) {
    LaneSchedule schedule(1);
    for (int i = 1; i <= 7; ++i) {
        EXPECT_EQ(schedule.add(Duration{static_cast<Duration>(i)}), 0u);
    }
    EXPECT_EQ(schedule.makespan(), schedule.serial_sum());
    EXPECT_EQ(schedule.serial_sum(), Duration{28});
    EXPECT_EQ(schedule.lanes_used(), 1u);
}

TEST(LaneSchedule, AddToLanePinsConflictChains) {
    LaneSchedule schedule(4);
    const std::size_t lane = schedule.add(Duration{10});
    schedule.add_to_lane(lane, Duration{10});  // same chain stays put
    schedule.add_to_lane(lane, Duration{10});
    EXPECT_EQ(schedule.makespan(), Duration{30});
    EXPECT_EQ(schedule.lanes_used(), 1u);
    // Independent work still lands elsewhere.
    EXPECT_NE(schedule.add(Duration{5}), lane);
}

TEST(LaneSchedule, ZeroLanesClampsToOne) {
    LaneSchedule schedule(0);
    EXPECT_EQ(schedule.lanes(), 1u);
    schedule.add(Duration{3});
    EXPECT_EQ(schedule.makespan(), Duration{3});
}

TEST(LatencyModel, ConstantAndNormal) {
    Rng rng(3);
    const LatencyModel constant = LatencyModel::constant(milliseconds(10));
    EXPECT_EQ(constant.sample(rng), milliseconds(10));

    const LatencyModel normal =
        LatencyModel::normal(milliseconds(100), milliseconds(20),
                             milliseconds(50));
    for (int i = 0; i < 1000; ++i) {
        EXPECT_GE(normal.sample(rng), milliseconds(50));  // floor holds
    }
}

}  // namespace
}  // namespace troxy::sim
