// Fine-grained protocol-level tests: certificate validation corner cases,
// Byzantine message injection at the wire level, and parameterized
// sweeps over protocol knobs.
#include <gtest/gtest.h>

#include "apps/echo_service.hpp"
#include "bench_support/cluster.hpp"
#include "net/envelope.hpp"
#include "troxy/cache_messages.hpp"

namespace troxy {
namespace {

using apps::EchoService;

bench::TroxyCluster::Params make_params(std::uint64_t seed) {
    bench::TroxyCluster::Params params;
    params.base.seed = seed;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    return params;
}

/// Runs one write through the cluster and returns whether it completed.
bool one_write_completes(bench::TroxyCluster& cluster,
                         troxy_core::LegacyClient& client) {
    bool done = false;
    client.start([&]() {
        client.send(EchoService::make_write(1, 64),
                    [&](Bytes) { done = true; });
    });
    cluster.simulator().run_until(sim::seconds(10));
    return done;
}

// A garbage blob on every channel must be discarded by every component
// without any effect on a concurrently running request.
TEST(WireFuzz, GarbageOnEveryChannelIsDiscarded) {
    bench::TroxyCluster cluster(make_params(201));
    auto& client = cluster.add_client(0);

    Rng rng(77);
    for (const auto channel :
         {net::Channel::Hybster, net::Channel::Client,
          net::Channel::TroxyCache}) {
        for (int i = 0; i < 20; ++i) {
            Bytes junk(rng.next_below(64) + 1);
            for (auto& byte : junk) {
                byte = static_cast<std::uint8_t>(rng.next());
            }
            cluster.fabric().send(cluster.config().node_of(2),
                                  cluster.config().node_of(0),
                                  net::wrap(channel, junk));
        }
    }
    EXPECT_TRUE(one_write_completes(cluster, client));
}

// Truncations of every valid protocol message must be rejected, not
// crash a replica (decode robustness over the full message space).
TEST(WireFuzz, TruncatedRealMessagesRejected) {
    hybster::Request request;
    request.id = {9, 4};
    request.payload = to_bytes("payload");
    request.auth.emplace_back();

    const Bytes wire = encode_message(hybster::Message(request));
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
        const auto decoded = hybster::decode_message(
            ByteView(wire.data(), cut));
        if (cut == wire.size()) continue;
        EXPECT_FALSE(decoded.has_value()) << "cut=" << cut;
    }

    troxy_core::CacheQuery query;
    query.state_key = "k";
    const Bytes cache_wire =
        encode_cache_message(troxy_core::CacheMessage(query));
    for (std::size_t cut = 0; cut + 1 < cache_wire.size(); ++cut) {
        EXPECT_FALSE(troxy_core::decode_cache_message(
                         ByteView(cache_wire.data(), cut))
                         .has_value());
    }
}

// A forged cache response (valid shape, bogus certificate) must neither
// complete nor corrupt a fast read.
TEST(WireFuzz, ForgedCacheResponseIgnored) {
    bench::TroxyCluster cluster(make_params(202));
    auto& client = cluster.add_client(0);

    Bytes read_reply;
    client.start([&]() {
        client.send(EchoService::make_write(2, 64), [&](Bytes) {
            client.send(EchoService::make_read(2, 32, 64), [&](Bytes) {
                // Next read will take the fast path; sneak in forged
                // responses claiming the entry differs.
                for (std::uint64_t q = 1; q <= 8; ++q) {
                    troxy_core::CacheResponse forged;
                    forged.responder = cluster.config().node_of(2);
                    forged.responder_replica = 2;
                    forged.query_id = q;
                    forged.has_entry = false;  // "mismatch"
                    cluster.fabric().send(
                        cluster.config().node_of(2),
                        cluster.config().node_of(0),
                        net::wrap(net::Channel::TroxyCache,
                                  encode_cache_message(
                                      troxy_core::CacheMessage(forged))));
                }
                client.send(EchoService::make_read(2, 32, 64),
                            [&](Bytes reply) {
                                read_reply = std::move(reply);
                            });
            });
        });
    });
    cluster.simulator().run_until(sim::seconds(10));
    EXPECT_EQ(read_reply, EchoService::expected_read_reply(2, 1, 64));
}

// A cache query from a node that is not a replica must be ignored (no
// response, no crash).
TEST(WireFuzz, CacheQueryFromOutsiderIgnored) {
    bench::TroxyCluster cluster(make_params(203));
    auto& client = cluster.add_client(0);

    troxy_core::CacheQuery query;
    query.requester = 4242;  // not a replica node
    query.query_id = 1;
    query.state_key = "k1";
    cluster.fabric().send(4242, cluster.config().node_of(1),
                          net::wrap(net::Channel::TroxyCache,
                                    encode_cache_message(
                                        troxy_core::CacheMessage(query))));

    EXPECT_TRUE(one_write_completes(cluster, client));
}

// ------------------------- parameterized: checkpoint interval sweep ----

class CheckpointSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CheckpointSweep, LogStaysBoundedAndServiceCorrect) {
    bench::TroxyCluster::Params params = make_params(210 + GetParam());
    params.base.checkpoint_interval = GetParam();
    bench::TroxyCluster cluster(std::move(params));
    auto& client = cluster.add_client();

    constexpr int kWrites = 40;
    int done = 0;
    std::function<void(int)> loop;
    loop = [&](int remaining) {
        if (remaining == 0) return;
        client.send(EchoService::make_write(1, 48), [&, remaining](Bytes) {
            ++done;
            loop(remaining - 1);
        });
    };
    client.start([&]() { loop(kWrites); });
    cluster.simulator().run_until(sim::seconds(30));

    ASSERT_EQ(done, kWrites);
    for (int r = 0; r < cluster.n(); ++r) {
        EXPECT_EQ(cluster.host(r).replica().last_executed(),
                  static_cast<std::uint64_t>(kWrites));
        // The stable point advanced to the last full interval.
        EXPECT_GE(cluster.host(r).replica().last_stable(),
                  (kWrites / GetParam()) * GetParam() -
                      (kWrites % GetParam() == 0 ? GetParam() : 0));
    }
}

INSTANTIATE_TEST_SUITE_P(Intervals, CheckpointSweep,
                         ::testing::Values(4, 8, 16, 32));

// ------------------------- parameterized: cache capacity sweep ---------

class CacheCapacitySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CacheCapacitySweep, TinyCachesStayCorrectJustSlower) {
    bench::TroxyCluster::Params params = make_params(220);
    params.host.troxy.cache_capacity_bytes = GetParam();
    bench::TroxyCluster cluster(std::move(params));
    auto& client = cluster.add_client(0);

    // Touch 8 keys twice; small caches will evict between rounds but
    // every reply must still be correct.
    int correct = 0;
    std::function<void(int)> loop;
    loop = [&](int step) {
        if (step == 16) return;
        const std::uint64_t key = static_cast<std::uint64_t>(step % 8);
        client.send(EchoService::make_read(key, 32, 128),
                    [&, key, step](Bytes reply) {
                        if (reply == EchoService::expected_read_reply(
                                         key, 0, 128)) {
                            ++correct;
                        }
                        loop(step + 1);
                    });
    };
    client.start([&]() { loop(0); });
    cluster.simulator().run_until(sim::seconds(20));
    EXPECT_EQ(correct, 16);
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheCapacitySweep,
                         ::testing::Values(512, 4096, 1u << 20));

// ------------------------- leader placement sweep ----------------------

class ContactSweep : public ::testing::TestWithParam<int> {};

TEST_P(ContactSweep, EveryContactReplicaWorks) {
    bench::TroxyCluster cluster(make_params(230));
    auto& client = cluster.add_client(GetParam());
    EXPECT_TRUE(one_write_completes(cluster, client));
}

INSTANTIATE_TEST_SUITE_P(Contacts, ContactSweep, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace troxy
