// Edge cases across modules: boundary sizes, empty payloads, reconnect
// churn, EPC pressure, and failure-timing corners.
#include <gtest/gtest.h>

#include "apps/echo_service.hpp"
#include "apps/kv_service.hpp"
#include "bench_support/cluster.hpp"
#include "crypto/aead.hpp"
#include "net/secure_channel.hpp"

namespace troxy {
namespace {

using apps::EchoService;
using apps::KvService;

bench::TroxyCluster::Params make_params(std::uint64_t seed) {
    bench::TroxyCluster::Params params;
    params.base.seed = seed;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    return params;
}

// ------------------------------------------------------------ crypto edges

TEST(EdgeCases, AeadEmptyPlaintextAndAad) {
    crypto::ChaChaKey key{};
    key[31] = 9;
    crypto::ChaChaNonce nonce{};
    const Bytes sealed = crypto::aead_seal(key, nonce, {}, {});
    EXPECT_EQ(sealed.size(), crypto::kAeadTagSize);
    const auto opened = crypto::aead_open(key, nonce, {}, sealed);
    ASSERT_TRUE(opened.has_value());
    EXPECT_TRUE(opened->empty());
}

TEST(EdgeCases, AeadLargePayload) {
    crypto::ChaChaKey key{};
    key[0] = 1;
    crypto::ChaChaNonce nonce{};
    Bytes big(1 << 20, 0xab);  // 1 MiB
    const Bytes sealed = crypto::aead_seal(key, nonce, {}, big);
    const auto opened = crypto::aead_open(key, nonce, {}, sealed);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(*opened, big);
}

TEST(EdgeCases, SecureChannelEmptyRecord) {
    const crypto::X25519Keypair identity =
        crypto::x25519_keypair_from_seed(to_bytes("id"));
    net::SecureChannelClient client(identity.public_key, to_bytes("s"));
    net::SecureChannelServer server(identity);
    enclave::CostMeter meter;
    enclave::CostedCrypto crypto_ops(sim::CostProfile::native(), meter);
    auto hello = server.accept(crypto_ops, client.client_hello(),
                               to_bytes("seed"));
    ASSERT_TRUE(hello && client.finish(*hello));

    const auto delivered = server.unprotect(client.protect({}));
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_TRUE(delivered[0].empty());
}

// -------------------------------------------------------- service edges

TEST(EdgeCases, EchoZeroByteReply) {
    EchoService service;
    EXPECT_TRUE(service.execute(EchoService::make_read(1, 32, 0)).empty());
}

TEST(EdgeCases, EchoTinyRequestSmallerThanHeader) {
    // make_write clamps padding at zero; the request is still parseable.
    EchoService service;
    const Bytes request = EchoService::make_write(1, 4);
    EXPECT_FALSE(service.classify(request).is_read);
    EXPECT_EQ(service.execute(request).size(), 10u);
}

TEST(EdgeCases, KvEmptyKeyAndValue) {
    KvService service;
    service.execute(KvService::make_put("", ""));
    EXPECT_EQ(to_string(service.execute(KvService::make_get(""))), "");
    EXPECT_EQ(service.size(), 1u);
}

TEST(EdgeCases, KvLargeValue) {
    KvService service;
    const std::string value(64 * 1024, 'v');
    service.execute(KvService::make_put("big", value));
    EXPECT_EQ(to_string(service.execute(KvService::make_get("big"))), value);
}

// ----------------------------------------------------- cluster edge cases

TEST(EdgeCases, ZeroByteWriteThroughCluster) {
    bench::TroxyCluster::Params params;
    params.base.seed = 301;
    params.service = []() { return std::make_unique<KvService>(); };
    params.classifier = [](ByteView request) {
        return KvService().classify(request);
    };
    bench::TroxyCluster cluster(std::move(params));
    auto& client = cluster.add_client();

    bool done = false;
    client.start([&]() {
        client.send(KvService::make_put("k", ""), [&](Bytes) {
            client.send(KvService::make_get("k"), [&](Bytes value) {
                EXPECT_TRUE(value.empty());
                done = true;
            });
        });
    });
    cluster.simulator().run_until(sim::seconds(10));
    EXPECT_TRUE(done);
}

TEST(EdgeCases, ClientReconnectChurn) {
    bench::TroxyCluster cluster(make_params(302));
    auto& client = cluster.add_client(0);

    // The contact is dead before the client even connects; the first
    // handshake times out and the client fails over. Later the crashed
    // host recovers — traffic just keeps flowing elsewhere.
    hybster::FaultProfile crash;
    crash.crashed = true;
    cluster.host(0).set_faults(crash);

    int completed = 0;
    std::function<void(int)> loop;
    loop = [&](int remaining) {
        if (remaining == 0) return;
        client.send(EchoService::make_write(1, 48), [&, remaining](Bytes) {
            ++completed;
            loop(remaining - 1);
        });
    };
    client.start([&]() { loop(12); });

    cluster.simulator().after(sim::seconds(8), [&]() {
        cluster.host(0).set_faults(hybster::FaultProfile{});
    });

    cluster.simulator().run_until(sim::seconds(60));
    EXPECT_EQ(completed, 12);
    EXPECT_GE(client.failovers(), 1u);
}

TEST(EdgeCases, ManyKeysChurnCacheUnderEpcPressure) {
    // A cache far smaller than the working set: every read evicts; all
    // replies must stay correct and the EPC accounting must never go
    // negative (assertions inside would abort).
    bench::TroxyCluster::Params params = make_params(303);
    params.host.troxy.cache_capacity_bytes = 2048;
    bench::TroxyCluster cluster(std::move(params));
    auto& client = cluster.add_client(0);

    int correct = 0;
    std::function<void(int)> loop;
    loop = [&](int step) {
        if (step == 30) return;
        const auto key = static_cast<std::uint64_t>(step % 10);
        client.send(EchoService::make_read(key, 32, 200),
                    [&, key, step](Bytes reply) {
                        if (reply == EchoService::expected_read_reply(
                                         key, 0, 200)) {
                            ++correct;
                        }
                        loop(step + 1);
                    });
    };
    client.start([&]() { loop(0); });
    cluster.simulator().run_until(sim::seconds(30));
    EXPECT_EQ(correct, 30);
}

TEST(EdgeCases, TwoFaultsWithFTwo) {
    bench::TroxyCluster::Params params = make_params(304);
    params.base.f = 2;  // five replicas
    bench::TroxyCluster cluster(std::move(params));

    hybster::FaultProfile drop;
    drop.drop_replies = true;
    cluster.host(3).replica().set_faults(drop);
    hybster::FaultProfile corrupt;
    corrupt.corrupt_replies = true;
    cluster.host(4).replica().set_faults(corrupt);

    auto& client = cluster.add_client(0);
    Bytes reply;
    client.start([&]() {
        client.send(EchoService::make_write(1, 64), [&](Bytes) {
            client.send(EchoService::make_read(1, 32, 96),
                        [&](Bytes r) { reply = std::move(r); });
        });
    });
    cluster.simulator().run_until(sim::seconds(15));
    EXPECT_EQ(reply, EchoService::expected_read_reply(1, 1, 96));
}

TEST(EdgeCases, SequentialClientsShareNothing) {
    // A second client connecting later sees exactly the state the first
    // one left behind — including through the fast-read cache.
    bench::TroxyCluster cluster(make_params(305));
    auto& first = cluster.add_client(0);

    bool first_done = false;
    first.start([&]() {
        first.send(EchoService::make_write(6, 48),
                   [&](Bytes) { first_done = true; });
    });
    cluster.simulator().run_until(sim::seconds(5));
    ASSERT_TRUE(first_done);

    auto& second = cluster.add_client(0);
    Bytes reply;
    second.start([&]() {
        second.send(EchoService::make_read(6, 32, 64),
                    [&](Bytes r) { reply = std::move(r); });
    });
    cluster.simulator().run_until(sim::seconds(10));
    EXPECT_EQ(reply, EchoService::expected_read_reply(6, 1, 64));
}

}  // namespace
}  // namespace troxy
