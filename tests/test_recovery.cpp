// Production-fleet recovery: Merkle-incremental state transfer, the
// certified TrinX handover, and proactive enclave recovery under load.
#include <gtest/gtest.h>

#include "apps/echo_service.hpp"
#include "bench_support/chaos.hpp"
#include "bench_support/cluster.hpp"
#include "hybster/snapshot.hpp"

namespace troxy {
namespace {

using apps::EchoService;

const sim::CostProfile kNative = sim::CostProfile::native();

// ------------------------------------------------------- Merkle chunking

TEST(MerkleSnapshot, DeterministicAndTamperEvident) {
    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(kNative, meter);

    Bytes snapshot(1000, 0x42);
    const auto a = hybster::chunk_snapshot(crypto, snapshot, 64);
    const auto b = hybster::chunk_snapshot(crypto, snapshot, 64);
    EXPECT_EQ(a.root, b.root);
    EXPECT_EQ(a.manifest, b.manifest);
    EXPECT_EQ(a.chunks.size(), 16u);  // 15 full chunks + a 40-byte tail
    EXPECT_EQ(a.total_bytes(), snapshot.size());

    // Every chunk verifies against its manifest entry, and the manifest
    // folds back into the root.
    for (std::size_t i = 0; i < a.chunks.size(); ++i) {
        EXPECT_EQ(hybster::chunk_leaf_hash(crypto, *a.chunks[i]),
                  a.manifest[i]);
    }
    EXPECT_EQ(hybster::merkle_root(crypto, a.manifest), a.root);

    // One flipped byte changes exactly one leaf and therefore the root.
    snapshot[500] = 0x43;
    const auto c = hybster::chunk_snapshot(crypto, snapshot, 64);
    EXPECT_NE(c.root, a.root);
    int differing = 0;
    for (std::size_t i = 0; i < a.manifest.size(); ++i) {
        if (a.manifest[i] != c.manifest[i]) ++differing;
    }
    EXPECT_EQ(differing, 1);
}

TEST(MerkleSnapshot, DomainSeparationAndEdgeCases) {
    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(kNative, meter);

    // Leaf hashing is domain-separated from plain SHA-256, so a chunk's
    // content can never be confused with tree structure.
    const Bytes chunk = to_bytes("some chunk");
    EXPECT_NE(hybster::chunk_leaf_hash(crypto, chunk),
              crypto::sha256(chunk));

    // An interior node over (l, l) differs from the leaf hash of the
    // 64-byte concatenation — the 0x00/0x01 prefixes keep levels apart.
    const auto l = hybster::chunk_leaf_hash(crypto, chunk);
    Bytes concat;
    concat.insert(concat.end(), l.begin(), l.end());
    concat.insert(concat.end(), l.begin(), l.end());
    EXPECT_NE(hybster::merkle_root(crypto, {l, l}),
              hybster::chunk_leaf_hash(crypto, concat));

    // Empty snapshot still yields one (empty) chunk and a root distinct
    // from the empty manifest's marker root.
    const auto empty = hybster::chunk_snapshot(crypto, {}, 64);
    EXPECT_EQ(empty.chunks.size(), 1u);
    EXPECT_TRUE(empty.chunks[0]->empty());
    EXPECT_NE(empty.root, hybster::merkle_root(crypto, {}));

    // A single-leaf manifest promotes the leaf to the root unchanged.
    EXPECT_EQ(hybster::merkle_root(crypto, {l}), l);
}

// -------------------------------------------------------- TrinX handover

TEST(TrinxHandover, CarriesCountersIntoFreshInstance) {
    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(kNative, meter);
    const Bytes key = to_bytes("shared-group-key-0123456789abcdef");

    enclave::TrinX old_instance(3, key);
    old_instance.certify_continuing(crypto, 1, to_bytes("m1"));
    old_instance.certify_continuing(crypto, 1, to_bytes("m2"));
    old_instance.certify_continuing(crypto, 7, to_bytes("m3"));
    const Bytes blob = old_instance.export_handover(crypto);

    enclave::TrinX fresh(3, key);
    ASSERT_TRUE(fresh.import_handover(crypto, blob));
    EXPECT_EQ(fresh.current(1), 2u);
    EXPECT_EQ(fresh.current(7), 1u);

    // The recovered instance continues the sequence — it can never
    // re-certify value 1 or 2 of counter 1.
    const auto next = fresh.certify_continuing(crypto, 1, to_bytes("m4"));
    EXPECT_EQ(next.value, 3u);
}

TEST(TrinxHandover, RejectsTamperAndForeignRecords) {
    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(kNative, meter);
    const Bytes key = to_bytes("shared-group-key-0123456789abcdef");

    enclave::TrinX source(0, key);
    source.certify_continuing(crypto, 1, to_bytes("m"));
    Bytes blob = source.export_handover(crypto);

    // Bit flip anywhere breaks the MAC.
    Bytes tampered = blob;
    tampered[5] ^= 0x01;
    enclave::TrinX sink(0, key);
    EXPECT_FALSE(sink.import_handover(crypto, tampered));

    // A record exported by replica 0 must not rebind replica 1's
    // counters — the handover is replica-bound.
    enclave::TrinX other(1, key);
    EXPECT_FALSE(other.import_handover(crypto, blob));

    // Truncated blobs are rejected without partial import.
    Bytes truncated(blob.begin(), blob.begin() + 4);
    EXPECT_FALSE(sink.import_handover(crypto, truncated));
    EXPECT_EQ(sink.current(1), 0u);

    // Valid import still works after the rejections.
    EXPECT_TRUE(sink.import_handover(crypto, blob));
    EXPECT_EQ(sink.current(1), 1u);
}

TEST(TrinxHandover, StaleImportNeverLowers) {
    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(kNative, meter);
    const Bytes key = to_bytes("shared-group-key-0123456789abcdef");

    enclave::TrinX source(2, key);
    source.certify_continuing(crypto, 1, to_bytes("m1"));
    const Bytes old_blob = source.export_handover(crypto);  // counter 1 = 1
    source.certify_continuing(crypto, 1, to_bytes("m2"));

    enclave::TrinX sink(2, key);
    ASSERT_TRUE(sink.import_handover(crypto, source.export_handover(crypto)));
    EXPECT_EQ(sink.current(1), 2u);
    // Replaying the older record must not roll the counter back.
    ASSERT_TRUE(sink.import_handover(crypto, old_blob));
    EXPECT_EQ(sink.current(1), 2u);
}

// ------------------------------------------- cluster helpers for the e2e

bench::TroxyCluster::Params recovery_params(std::uint64_t seed) {
    bench::TroxyCluster::Params params;
    params.base.seed = seed;
    params.base.checkpoint_interval = 8;
    // Tiny chunks so the echo service's small snapshots span many chunks
    // and the incremental path has something to skip.
    params.base.state_chunk_size = 64;
    params.base.state_transfer_retry = sim::milliseconds(250);
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    params.host.vote_timeout = sim::milliseconds(300);
    params.host.fast_read_timeout = sim::milliseconds(20);
    params.client.connection_timeout = sim::milliseconds(500);
    return params;
}

/// Issues `count` sequential writes spread over `keys` keys, starting
/// when the client connects; calls `done` after the last ack.
void drive_writes(bench::TroxyCluster& cluster,
                  troxy_core::LegacyClient& client, int count, int keys,
                  std::function<void()> done) {
    auto remaining = std::make_shared<int>(count);
    auto issue = std::make_shared<std::function<void()>>();
    // The stored function captures itself weakly (a strong self-capture
    // is a shared_ptr cycle, i.e. a leak); the async callbacks below keep
    // the chain alive with strong copies.
    *issue = [&cluster, &client, remaining, keys,
              weak = std::weak_ptr(issue), done = std::move(done)]() {
        if (*remaining == 0) {
            if (done) done();
            return;
        }
        const auto issue = weak.lock();
        if (!issue) return;
        const auto key = static_cast<std::uint64_t>(*remaining % keys);
        --*remaining;
        client.send(EchoService::make_write(key, 64),
                    [issue](Bytes) { (*issue)(); });
    };
    client.start([issue]() { (*issue)(); });
}

std::uint64_t total_chunks_skipped(bench::TroxyCluster& cluster) {
    std::uint64_t total = 0;
    for (int i = 0; i < cluster.n(); ++i) {
        total += cluster.host(i).replica().state_stats().chunks_skipped;
    }
    return total;
}

std::uint64_t total_bytes_sent(bench::TroxyCluster& cluster) {
    std::uint64_t total = 0;
    for (int i = 0; i < cluster.n(); ++i) {
        total += cluster.host(i).replica().state_stats().bytes_sent;
    }
    return total;
}

std::uint64_t total_bytes_full(bench::TroxyCluster& cluster) {
    std::uint64_t total = 0;
    for (int i = 0; i < cluster.n(); ++i) {
        total += cluster.host(i).replica().state_stats().bytes_full;
    }
    return total;
}

// A crashed replica whose durable chunk store survives rejoins with an
// incremental transfer: the responders skip the chunks it advertises and
// ship fewer bytes than a monolithic snapshot would cost.
TEST(Recovery, IncrementalRejoinSkipsHeldChunks) {
    bench::TroxyCluster cluster(recovery_params(901));
    auto& client = cluster.add_client(0);

    int phase = 0;
    // Phase 1: populate 32 keys (past several checkpoints), then crash
    // replica 2, write a small delta, restart it, write more so the
    // rejoiner both transfers state and resumes executing.
    drive_writes(cluster, client, 40, 32, [&]() {
        phase = 1;
        cluster.crash_host(2);
    });
    cluster.simulator().run_until(sim::seconds(5));
    ASSERT_EQ(phase, 1);

    bool delta_done = false;
    auto issue_delta = std::make_shared<std::function<void(int)>>();
    *issue_delta = [&](int left) {
        if (left == 0) {
            delta_done = true;
            return;
        }
        client.send(EchoService::make_write(0, 64), [&, left](Bytes) {
            (*issue_delta)(left - 1);
        });
    };
    (*issue_delta)(20);
    cluster.simulator().run_until(sim::seconds(8));
    ASSERT_TRUE(delta_done);

    cluster.restart_host(2);
    bool tail_done = false;
    auto issue_tail = std::make_shared<std::function<void(int)>>();
    *issue_tail = [&](int left) {
        if (left == 0) {
            tail_done = true;
            return;
        }
        client.send(EchoService::make_write(1, 64), [&, left](Bytes) {
            (*issue_tail)(left - 1);
        });
    };
    (*issue_tail)(20);
    cluster.simulator().run_until(sim::seconds(20));
    ASSERT_TRUE(tail_done);

    // The rejoiner caught up...
    auto& rejoiner = cluster.host(2).replica();
    EXPECT_GT(rejoiner.state_transfers(), 0u);
    EXPECT_GE(rejoiner.last_executed() + 16,
              cluster.host(0).replica().last_executed());
    // ...and the transfer was incremental: only the delta-dirtied chunks
    // travelled, everything else was either advertised (responder skips)
    // or reused straight from the durable store.
    const auto& stats = rejoiner.state_stats();
    EXPECT_GT(stats.chunks_received + stats.chunks_reused, 0u);
    EXPECT_GT(total_chunks_skipped(cluster) + stats.chunks_reused, 0u);
    EXPECT_LT(total_bytes_sent(cluster), total_bytes_full(cluster));
}

// Satellite: a loss window that swallows the first StateResponse chunks
// mid-stream. After state_transfer_retry the rejoiner re-requests with
// the chunks it already banked — the transfer resumes instead of
// restarting, and completes once the window heals.
TEST(Recovery, TransferResumesAfterDroppedChunks) {
    auto params = recovery_params(902);
    // One chunk per message: a loss window can eat part of the stream.
    params.base.state_chunks_per_message = 1;
    bench::TroxyCluster cluster(params);
    auto& client = cluster.add_client(0);

    int phase = 0;
    drive_writes(cluster, client, 48, 32, [&]() {
        phase = 1;
        cluster.crash_host(2);
    });
    cluster.simulator().run_until(sim::seconds(5));
    ASSERT_EQ(phase, 1);

    // Start from a provably empty store so the transfer must stream
    // every chunk (otherwise the surviving store masks the loss window).
    cluster.host(2).replica().clear_chunk_store();

    // Heavy loss towards the rejoiner while the transfer starts; heals
    // two seconds later, well past several retry periods.
    const sim::NodeId rejoiner_node = cluster.config().replicas[2];
    for (int i = 0; i < 2; ++i) {
        cluster.network().set_loss_bidirectional(
            cluster.config().replicas[static_cast<std::size_t>(i)],
            rejoiner_node, 0.8);
    }
    cluster.restart_host(2);
    cluster.simulator().after(sim::seconds(2), [&]() {
        for (int i = 0; i < 2; ++i) {
            cluster.network().set_loss_bidirectional(
                cluster.config().replicas[static_cast<std::size_t>(i)],
                rejoiner_node, 0.0);
        }
    });

    bool tail_done = false;
    auto issue_tail = std::make_shared<std::function<void(int)>>();
    *issue_tail = [&](int left) {
        if (left == 0) {
            tail_done = true;
            return;
        }
        client.send(EchoService::make_write(2, 64), [&, left](Bytes) {
            (*issue_tail)(left - 1);
        });
    };
    (*issue_tail)(24);
    cluster.simulator().run_until(sim::seconds(25));
    ASSERT_TRUE(tail_done);

    auto& rejoiner = cluster.host(2).replica();
    EXPECT_GT(rejoiner.state_transfers(), 0u);
    EXPECT_GE(rejoiner.state_stats().transfers_resumed, 1u);
    EXPECT_GT(rejoiner.state_stats().chunks_received, 0u);
    EXPECT_GE(rejoiner.last_executed() + 16,
              cluster.host(0).replica().last_executed());
}

// Satellite: the replica serving the chunk stream crashes mid-transfer.
// The retry re-targets the surviving responder and the rejoin completes.
TEST(Recovery, TransferSurvivesResponderCrash) {
    auto params = recovery_params(903);
    params.base.state_chunks_per_message = 1;
    bench::TroxyCluster cluster(params);
    auto& client = cluster.add_client(1);

    int phase = 0;
    drive_writes(cluster, client, 48, 32, [&]() {
        phase = 1;
        cluster.crash_host(2);
    });
    cluster.simulator().run_until(sim::seconds(5));
    ASSERT_EQ(phase, 1);

    cluster.host(2).replica().clear_chunk_store();
    cluster.restart_host(2);
    // Take responder 0 down just as the stream starts, bring it back
    // after the rejoin should have completed via replica 1.
    cluster.simulator().after(sim::milliseconds(5),
                              [&]() { cluster.crash_host(0); });
    cluster.simulator().after(sim::seconds(6),
                              [&]() { cluster.restart_host(0); });

    bool tail_done = false;
    auto issue_tail = std::make_shared<std::function<void(int)>>();
    *issue_tail = [&](int left) {
        if (left == 0) {
            tail_done = true;
            return;
        }
        client.send(EchoService::make_write(3, 64), [&, left](Bytes) {
            (*issue_tail)(left - 1);
        });
    };
    (*issue_tail)(24);
    cluster.simulator().run_until(sim::seconds(25));
    ASSERT_TRUE(tail_done);

    auto& rejoiner = cluster.host(2).replica();
    EXPECT_GT(rejoiner.state_transfers(), 0u);
    EXPECT_GE(rejoiner.last_executed() + 16,
              cluster.host(1).replica().last_executed());
}

// ----------------------------------------------- proactive enclave swap

// Explicit recovery under client load: the host buffers frames across
// the downtime window, the fresh enclave passes attestation, rebinds the
// counters, and the buffered requests still complete.
TEST(Recovery, EnclaveRecoveryUnderLoadIsTransparent) {
    auto params = recovery_params(904);
    bench::TroxyCluster cluster(params);
    auto& client = cluster.add_client(1);

    bool warm = false;
    drive_writes(cluster, client, 8, 4, [&]() { warm = true; });
    cluster.simulator().run_until(sim::seconds(3));
    ASSERT_TRUE(warm);

    // Kick the recovery, then immediately keep writing through the
    // contact replica whose enclave is down.
    ASSERT_TRUE(cluster.recover_enclave(1));
    EXPECT_FALSE(cluster.recover_enclave(1));  // one in flight already

    bool tail_done = false;
    auto issue_tail = std::make_shared<std::function<void(int)>>();
    *issue_tail = [&](int left) {
        if (left == 0) {
            tail_done = true;
            return;
        }
        client.send(EchoService::make_write(1, 64), [&, left](Bytes) {
            (*issue_tail)(left - 1);
        });
    };
    (*issue_tail)(12);
    cluster.simulator().run_until(sim::seconds(15));

    EXPECT_TRUE(tail_done);
    EXPECT_EQ(cluster.host(1).enclave_recoveries(), 1u);
    // Ordering kept working across the swap: the certified handover
    // carried the trusted counters into the fresh instance (a reset
    // would have broken the continuing-certificate chain).
    EXPECT_GT(cluster.host(1).replica().last_executed(), 8u);
}

// Periodic schedule: every enclave in the fleet recovers at least once,
// staggered, while a client keeps completing requests.
TEST(Recovery, PeriodicScheduleRecoversWholeFleet) {
    auto params = recovery_params(905);
    params.host.enclave_recovery_period = sim::milliseconds(900);
    bench::TroxyCluster cluster(params);
    auto& client = cluster.add_client(0);

    bool done = false;
    drive_writes(cluster, client, 60, 8, [&]() { done = true; });
    cluster.simulator().run_until(sim::seconds(12));

    EXPECT_TRUE(done);
    for (int i = 0; i < cluster.n(); ++i) {
        EXPECT_GE(cluster.host(i).enclave_recoveries(), 1u)
            << "enclave " << i << " never recovered";
    }
}

// ------------------------------------------------- rolling chaos smoke

// The tentpole acceptance scenario in miniature: every replica host is
// crash/restarted in sequence and every enclave recovered, under an open
// client loop, with zero linearizability violations and full liveness.
TEST(Recovery, RollingRestartChaosStaysLinearizable) {
    bench::ChaosOptions options;
    options.seed = 906;
    options.clients = 3;
    options.requests_per_client = 30;
    options.rolling_restart = true;
    options.enclave_recovery_period = sim::seconds(3);
    options.fault_start = sim::seconds(1);
    options.heal_by = sim::seconds(7);
    options.horizon = sim::seconds(30);
    options.state_chunk_size = 64;

    const bench::ChaosReport report = bench::run_chaos(options);
    EXPECT_TRUE(report.ok()) << report.plan_trace
                             << (report.errors.empty()
                                     ? ""
                                     : "\nfirst: " + report.errors[0]);
    EXPECT_EQ(report.restarts, 3u);       // every host restarted once
    EXPECT_GE(report.enclave_recoveries, 3u);  // every enclave recovered
    EXPECT_EQ(report.violations, 0u);
}

}  // namespace
}  // namespace troxy
