// MailService (IMAP-style line protocol) unit tests plus end-to-end use
// through a Troxy cluster — the paper's second motivating legacy
// protocol family.
#include <gtest/gtest.h>

#include "apps/mail_service.hpp"
#include "bench_support/cluster.hpp"

namespace troxy::apps {
namespace {

TEST(MailService, AppendFetchList) {
    MailService service;
    EXPECT_EQ(to_string(service.execute(MailService::make_list("inbox"))),
              "0");

    EXPECT_EQ(to_string(service.execute(
                  MailService::make_append("inbox", "hello bob"))),
              "OK 1");
    EXPECT_EQ(to_string(service.execute(
                  MailService::make_append("inbox", "hello again"))),
              "OK 2");

    EXPECT_EQ(to_string(service.execute(MailService::make_list("inbox"))),
              "2 1 2");
    EXPECT_EQ(to_string(service.execute(MailService::make_fetch("inbox", 1))),
              "hello bob");
    EXPECT_EQ(to_string(service.execute(MailService::make_fetch("inbox", 2))),
              "hello again");
}

TEST(MailService, ExpungeRemovesAndIdsNeverReused) {
    MailService service;
    service.execute(MailService::make_append("inbox", "a"));
    service.execute(MailService::make_append("inbox", "b"));
    EXPECT_EQ(to_string(service.execute(
                  MailService::make_expunge("inbox", 1))),
              "OK");
    EXPECT_EQ(to_string(service.execute(MailService::make_fetch("inbox", 1))),
              "NO such message");
    // New appends continue the id sequence.
    EXPECT_EQ(to_string(service.execute(
                  MailService::make_append("inbox", "c"))),
              "OK 3");
    EXPECT_EQ(service.message_count("inbox"), 2u);
}

TEST(MailService, MailboxesAreIndependent) {
    MailService service;
    service.execute(MailService::make_append("work", "w1"));
    service.execute(MailService::make_append("home", "h1"));
    EXPECT_EQ(to_string(service.execute(MailService::make_list("work"))),
              "1 1");
    EXPECT_EQ(to_string(service.execute(MailService::make_list("home"))),
              "1 1");
    EXPECT_EQ(to_string(service.execute(MailService::make_fetch("work", 1))),
              "w1");
}

TEST(MailService, ClassifierPartitionsByMailbox) {
    MailService service;
    const auto list = service.classify(MailService::make_list("inbox"));
    EXPECT_TRUE(list.is_read);
    EXPECT_EQ(list.state_key, "mail:inbox");

    const auto append =
        service.classify(MailService::make_append("inbox", "x"));
    EXPECT_FALSE(append.is_read);
    EXPECT_EQ(append.state_key, "mail:inbox");

    const auto other = service.classify(MailService::make_fetch("spam", 1));
    EXPECT_EQ(other.state_key, "mail:spam");

    // All reads stay keyed on the mailbox partition (so any mutation of
    // the mailbox invalidates them); an expunge additionally names the
    // message it removes in its write set.
    EXPECT_TRUE(other.extra_keys.empty());
    const auto expunge =
        service.classify(MailService::make_expunge("inbox", 4));
    EXPECT_EQ(expunge.state_key, "mail:inbox");
    EXPECT_EQ(expunge.extra_keys,
              (std::vector<std::string>{"mail:inbox:msg:4"}));
    const auto append2 =
        service.classify(MailService::make_append("inbox", "x"));
    EXPECT_TRUE(append2.extra_keys.empty());
}

TEST(MailService, ErrorsAreTextualNotFatal) {
    MailService service;
    EXPECT_EQ(to_string(service.execute(to_bytes("NONSENSE"))),
              "BAD command");
    EXPECT_EQ(to_string(service.execute(MailService::make_fetch("none", 7))),
              "NO such mailbox");
    EXPECT_EQ(to_string(service.execute(
                  MailService::make_expunge("none", 7))),
              "NO such message");
}

TEST(MailService, CheckpointRestoreRoundTrip) {
    MailService a;
    a.execute(MailService::make_append("inbox", "one"));
    a.execute(MailService::make_append("inbox", "two"));
    a.execute(MailService::make_expunge("inbox", 1));
    a.execute(MailService::make_append("archive", "old"));

    MailService b;
    b.restore(a.checkpoint());
    EXPECT_EQ(b.checkpoint(), a.checkpoint());
    EXPECT_EQ(to_string(b.execute(MailService::make_fetch("inbox", 2))),
              "two");
    // next_id restored: new append gets id 3, not 1.
    EXPECT_EQ(to_string(b.execute(MailService::make_append("inbox", "x"))),
              "OK 3");
}

TEST(MailService, DeterministicAcrossInstances) {
    MailService a, b;
    for (MailService* s : {&a, &b}) {
        s->execute(MailService::make_append("m", "first"));
        s->execute(MailService::make_append("m", "second"));
        s->execute(MailService::make_expunge("m", 1));
    }
    EXPECT_EQ(a.checkpoint(), b.checkpoint());
}

// End-to-end: an "IMAP client" works against the Troxy-backed cluster;
// LIST/FETCH after APPEND reflect the write (cache invalidation by
// mailbox key).
TEST(MailOverTroxy, ClientSessionIsLinearizable) {
    bench::TroxyCluster::Params params;
    params.base.seed = 404;
    params.service = []() { return std::make_unique<MailService>(); };
    params.classifier = [](ByteView request) {
        return MailService().classify(request);
    };
    bench::TroxyCluster cluster(std::move(params));
    auto& client = cluster.add_client();

    std::vector<std::string> transcript;
    client.start([&]() {
        client.send(MailService::make_list("inbox"), [&](Bytes r1) {
            transcript.push_back(to_string(r1));
            client.send(MailService::make_append("inbox", "urgent: bft"),
                        [&](Bytes r2) {
                transcript.push_back(to_string(r2));
                client.send(MailService::make_list("inbox"), [&](Bytes r3) {
                    transcript.push_back(to_string(r3));
                    client.send(MailService::make_fetch("inbox", 1),
                                [&](Bytes r4) {
                                    transcript.push_back(to_string(r4));
                                });
                });
            });
        });
    });
    cluster.simulator().run_until(sim::seconds(10));

    ASSERT_EQ(transcript.size(), 4u);
    EXPECT_EQ(transcript[0], "0");
    EXPECT_EQ(transcript[1], "OK 1");
    EXPECT_EQ(transcript[2], "1 1");  // the APPEND invalidated the cache
    EXPECT_EQ(transcript[3], "urgent: bft");
}

}  // namespace
}  // namespace troxy::apps
